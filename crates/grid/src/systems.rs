//! TeraGrid system profiles, calibrated to the paper's Table 1.
//!
//! | System        | Model bench (min) | SUs/CPUh | notes                       |
//! |---------------|-------------------|----------|-----------------------------|
//! | NCAR Frost    | 110.0             | 0.558    | BlueGene/L, slow cores      |
//! | NICS Kraken   | 23.6              | 1.623    | production target, WS-GRAM  |
//! | TACC Lonestar | 15.1              | 1.935    | fastest; small disk         |
//! | TACC Ranger   | 21.1              | 1.644    | no WS-GRAM                  |

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Static description of one TeraGrid compute resource.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemProfile {
    /// Short site name used in GRAM/GridFTP contact strings.
    pub name: String,
    /// Operating organization (NCAR, NICS, TACC).
    pub provider: String,
    /// Total schedulable processor cores.
    pub cores: u32,
    /// Measured single-processor stellar-model benchmark time (Table 1).
    pub model_benchmark_minutes: f64,
    /// TeraGrid service-unit charge factor per CPU-hour (Table 1).
    pub su_per_cpuh: f64,
    /// Scheduler walltime limit per job \[hours] (§6: "usually 6 or 24").
    pub walltime_limit_hours: f64,
    /// WS-GRAM availability (Ranger lacked it, §2).
    pub has_ws_gram: bool,
    /// Scratch quota in bytes (Lonestar's "small disk space", §2).
    pub scratch_quota_bytes: u64,
    /// Scheduler supports job chaining / dependencies (§6).
    pub supports_job_chaining: bool,
    /// Mean background utilization from other users' jobs in [0,1)
    /// ("allocation oversubscription", §2) — drives queue wait.
    pub background_utilization: f64,
}

impl SystemProfile {
    pub fn walltime_limit(&self) -> SimDuration {
        SimDuration::from_hours(self.walltime_limit_hours)
    }

    /// SU charge for a job using `cores` for `dur`.
    pub fn su_charge(&self, cores: u32, dur: SimDuration) -> f64 {
        dur.as_hours() * cores as f64 * self.su_per_cpuh
    }
}

/// NCAR Frost (BlueGene/L).
pub fn frost() -> SystemProfile {
    SystemProfile {
        name: "frost".into(),
        provider: "NCAR".into(),
        cores: 8192,
        model_benchmark_minutes: 110.0,
        su_per_cpuh: 0.558,
        walltime_limit_hours: 24.0,
        has_ws_gram: true,
        scratch_quota_bytes: 2 << 40,
        supports_job_chaining: true,
        background_utilization: 0.35,
    }
}

/// NICS Kraken (Cray XT5) — AMP's production target.
pub fn kraken() -> SystemProfile {
    SystemProfile {
        name: "kraken".into(),
        provider: "NICS".into(),
        cores: 66_048,
        model_benchmark_minutes: 23.6,
        su_per_cpuh: 1.623,
        walltime_limit_hours: 24.0,
        has_ws_gram: true,
        scratch_quota_bytes: 4 << 40,
        supports_job_chaining: true,
        background_utilization: 0.55,
    }
}

/// TACC Lonestar — fastest per core, small disk, oversubscribed.
pub fn lonestar() -> SystemProfile {
    SystemProfile {
        name: "lonestar".into(),
        provider: "TACC".into(),
        cores: 5840,
        model_benchmark_minutes: 15.1,
        su_per_cpuh: 1.935,
        walltime_limit_hours: 24.0,
        has_ws_gram: true,
        scratch_quota_bytes: 256 << 30,
        supports_job_chaining: true,
        background_utilization: 0.80,
    }
}

/// TACC Ranger — fast, but no WS-GRAM and oversubscribed.
pub fn ranger() -> SystemProfile {
    SystemProfile {
        name: "ranger".into(),
        provider: "TACC".into(),
        cores: 62_976,
        model_benchmark_minutes: 21.1,
        su_per_cpuh: 1.644,
        walltime_limit_hours: 24.0,
        has_ws_gram: false,
        scratch_quota_bytes: 4 << 40,
        supports_job_chaining: true,
        background_utilization: 0.80,
    }
}

/// All four Table 1 systems, in the table's order.
pub fn table1_systems() -> Vec<SystemProfile> {
    vec![frost(), kraken(), lonestar(), ranger()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_calibration() {
        let systems = table1_systems();
        let bench: Vec<f64> = systems.iter().map(|s| s.model_benchmark_minutes).collect();
        assert_eq!(bench, vec![110.0, 23.6, 15.1, 21.1]);
        let su: Vec<f64> = systems.iter().map(|s| s.su_per_cpuh).collect();
        assert_eq!(su, vec![0.558, 1.623, 1.935, 1.644]);
    }

    #[test]
    fn su_charge_formula() {
        // Frost optimization run: 293.3 h on 512 cores -> ~83.8k SUs
        let f = frost();
        let charge = f.su_charge(512, SimDuration::from_hours(293.3));
        assert!((charge - 83_800.0).abs() < 300.0, "charge {charge}");
    }

    #[test]
    fn ranger_lacks_ws_gram() {
        assert!(!ranger().has_ws_gram);
        assert!(kraken().has_ws_gram);
    }

    #[test]
    fn lonestar_disk_is_smallest() {
        let systems = table1_systems();
        let min = systems
            .iter()
            .min_by_key(|s| s.scratch_quota_bytes)
            .unwrap();
        assert_eq!(min.name, "lonestar");
    }

    #[test]
    fn tacc_systems_most_oversubscribed() {
        assert!(lonestar().background_utilization > kraken().background_utilization);
        assert!(ranger().background_utilization > frost().background_utilization);
    }
}
