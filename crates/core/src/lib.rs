//! # amp-core — the shared AMP application models
//!
//! The "core application" of the AMP gateway reproduction (Woitaszek et
//! al., GCE 2009, §4.1): the single set of ORM models shared between the
//! public web portal and the GridAMP workflow daemon, plus the strict
//! input-file marshaling and the canonical database roles that implement
//! Figure 2's isolation.
//!
//! * [`models`] — users, stars, observations, simulations, grid jobs,
//!   allocations, authorizations, notifications;
//! * [`status`] — the Listing-1 workflow state vocabulary;
//! * [`app`] — the `ScienceApp` trait and built-in application registry;
//! * [`marshal`] — rigid input/parameter file generation and parsing;
//! * [`roles`] — the `web` / `daemon` / `admin` permission matrix;
//! * [`setup`] — database bootstrap (migrate all models, define roles).

pub mod app;
pub mod marshal;
pub mod models;
pub mod roles;
pub mod status;

pub use app::{FitnessFn, ModelFailure, ModelRun, ParamSpec, ResourceTemplate, ScienceApp};
pub use marshal::{
    generate_observation_file, generate_params_file, parse_observation_file, parse_params_file,
    MarshalError,
};
pub use models::simulation::{OptimizationSpec, SimPayload};
pub use models::{
    Allocation, AmpUser, GridJobRecord, Lease, Notification, NotifyMode, Observation, SimKind,
    Simulation, Star, SystemAuthorization,
};
pub use status::{JobPurpose, JobStatus, SimStatus};

use amp_simdb::orm::Registry;
use amp_simdb::{Db, DbError};

/// Database bootstrap.
pub mod setup {
    use super::*;

    /// The full model registry, in FK-dependency order.
    pub fn registry() -> Registry {
        Registry::new()
            .register::<models::AmpUser>()
            .register::<models::Star>()
            .register::<models::Observation>()
            .register::<models::Allocation>()
            .register::<models::Simulation>()
            .register::<models::GridJobRecord>()
            .register::<models::Lease>()
            .register::<models::SystemAuthorization>()
            .register::<models::Notification>()
    }

    /// Define the three canonical roles and migrate every core model.
    /// Returns the names of the tables created (empty on re-run).
    pub fn initialize(db: &Db) -> Result<Vec<String>, DbError> {
        db.define_role(roles::admin_role());
        db.define_role(roles::web_role());
        db.define_role(roles::daemon_role());
        let admin = db.connect(roles::ROLE_ADMIN)?;
        registry().migrate(&admin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amp_simdb::orm::Manager;
    use amp_simdb::Query;
    use amp_stellar::StellarParams;

    #[test]
    fn initialize_creates_all_tables_idempotently() {
        let db = Db::in_memory();
        let created = setup::initialize(&db).unwrap();
        assert_eq!(created.len(), 9);
        let again = setup::initialize(&db).unwrap();
        assert!(again.is_empty());
    }

    #[test]
    fn full_submission_flow_respects_roles() {
        let db = Db::in_memory();
        setup::initialize(&db).unwrap();

        // admin seeds an allocation
        let admin = db.connect(roles::ROLE_ADMIN).unwrap();
        let alloc_mgr = Manager::<Allocation>::new(admin.clone());
        let mut alloc = Allocation::new("kraken", "TG-AST090030", 500_000.0);
        alloc_mgr.create(&mut alloc).unwrap();

        // web registers a user, imports a star, submits a simulation
        let web = db.connect(roles::ROLE_WEB).unwrap();
        let users = Manager::<AmpUser>::new(web.clone());
        let mut u = AmpUser::new("astro1", "a@x.edu", "hash", 0);
        users.create(&mut u).unwrap();

        let stars = Manager::<Star>::new(web.clone());
        let famous = amp_stellar::famous_stars();
        let mut s = Star::from_catalog(&famous[0], "simbad");
        stars.create(&mut s).unwrap();

        let sims = Manager::<Simulation>::new(web.clone());
        let mut sim = Simulation::new_direct(
            s.id.unwrap(),
            u.id.unwrap(),
            StellarParams::benchmark(),
            "kraken",
            alloc.id.unwrap(),
            100,
        );
        sims.create(&mut sim).unwrap();

        // web cannot advance the workflow...
        sim.status = SimStatus::Running;
        assert!(sims.save(&sim).is_err());

        // ...but the daemon can
        let daemon = db.connect(roles::ROLE_DAEMON).unwrap();
        let dsims = Manager::<Simulation>::new(daemon.clone());
        let mut picked = dsims
            .first(&Query::new().eq("status", SimStatus::Queued.as_str()))
            .unwrap()
            .unwrap();
        picked.status = SimStatus::PreJob;
        dsims.save(&picked).unwrap();

        // daemon records a grid job
        let jobs = Manager::<GridJobRecord>::new(daemon.clone());
        let mut j = GridJobRecord::new(
            picked.id.unwrap(),
            -1,
            JobPurpose::PreJob,
            0,
            "kraken",
            0,
            "stellar",
        );
        jobs.create(&mut j).unwrap();

        // the portal can read job progress but not write it
        let wjobs = Manager::<GridJobRecord>::new(web);
        assert_eq!(wjobs.all().unwrap().len(), 1);
        let mut stolen = wjobs.get(j.id.unwrap()).unwrap();
        stolen.status = JobStatus::Done;
        assert!(wjobs.save(&stolen).is_err());
    }

    #[test]
    fn fk_integrity_across_models() {
        let db = Db::in_memory();
        setup::initialize(&db).unwrap();
        let admin = db.connect(roles::ROLE_ADMIN).unwrap();
        let sims = Manager::<Simulation>::new(admin);
        let mut sim = Simulation::new_direct(
            999, // no such star
            1,
            StellarParams::benchmark(),
            "kraken",
            1,
            0,
        );
        assert!(sims.create(&mut sim).is_err());
    }
}
