//! Simulation and grid-job status vocabularies.
//!
//! The two-level status scheme of §4.4: simulation status lives "at the
//! highest level of the application-specific data model so the user
//! interface does not need to analyze the state of many individual grid
//! jobs", while constituent grid jobs carry a generic job status.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Workflow states of a simulation — exactly Listing 1's vocabulary plus
/// the failure-handling states of §4.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SimStatus {
    /// Submitted by the user, not yet picked up.
    Queued,
    /// Pre-job environment setup running (fork script).
    PreJob,
    /// Model job(s) running/propagating.
    Running,
    /// Post-job output consolidation running.
    PostJob,
    /// Execution environment teardown.
    Cleanup,
    /// Completed; results available.
    Done,
    /// Model failure: parked for administrator attention (§4.4).
    Hold,
}

impl SimStatus {
    pub fn as_str(&self) -> &'static str {
        match self {
            SimStatus::Queued => "QUEUED",
            SimStatus::PreJob => "PREJOB",
            SimStatus::Running => "RUNNING",
            SimStatus::PostJob => "POSTJOB",
            SimStatus::Cleanup => "CLEANUP",
            SimStatus::Done => "DONE",
            SimStatus::Hold => "HOLD",
        }
    }

    pub fn is_terminal(&self) -> bool {
        matches!(self, SimStatus::Done)
    }

    /// The linear happy path of Listing 1.
    pub fn happy_path() -> [SimStatus; 6] {
        [
            SimStatus::Queued,
            SimStatus::PreJob,
            SimStatus::Running,
            SimStatus::PostJob,
            SimStatus::Cleanup,
            SimStatus::Done,
        ]
    }
}

impl fmt::Display for SimStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for SimStatus {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "QUEUED" => Ok(SimStatus::Queued),
            "PREJOB" => Ok(SimStatus::PreJob),
            "RUNNING" => Ok(SimStatus::Running),
            "POSTJOB" => Ok(SimStatus::PostJob),
            "CLEANUP" => Ok(SimStatus::Cleanup),
            "DONE" => Ok(SimStatus::Done),
            "HOLD" => Ok(SimStatus::Hold),
            other => Err(format!("unknown simulation status {other:?}")),
        }
    }
}

/// Generic status of one constituent grid job (purpose-independent, §4.4:
/// "this process is identical for all grid jobs regardless of purpose").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobStatus {
    /// Created in the DB, not yet submitted to GRAM.
    Unsubmitted,
    /// Submitted; queued remotely.
    Pending,
    /// Executing.
    Active,
    /// Finished successfully.
    Done,
    /// Finished unsuccessfully.
    Failed,
}

impl JobStatus {
    pub fn as_str(&self) -> &'static str {
        match self {
            JobStatus::Unsubmitted => "UNSUBMITTED",
            JobStatus::Pending => "PENDING",
            JobStatus::Active => "ACTIVE",
            JobStatus::Done => "DONE",
            JobStatus::Failed => "FAILED",
        }
    }

    pub fn is_terminal(&self) -> bool {
        matches!(self, JobStatus::Done | JobStatus::Failed)
    }
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for JobStatus {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "UNSUBMITTED" => Ok(JobStatus::Unsubmitted),
            "PENDING" => Ok(JobStatus::Pending),
            "ACTIVE" => Ok(JobStatus::Active),
            "DONE" => Ok(JobStatus::Done),
            "FAILED" => Ok(JobStatus::Failed),
            other => Err(format!("unknown job status {other:?}")),
        }
    }
}

/// The purpose of a constituent grid job inside a simulation workflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobPurpose {
    /// Fork script creating the runtime directory tree (§4.3).
    PreJob,
    /// A model execution (direct run, or one GA continuation).
    Work,
    /// Fork script tarring outputs for staging back.
    PostJob,
    /// Fork script removing the execution environment.
    Cleanup,
    /// The final forward-model detail run on the best GA solution (§2).
    SolutionEvaluation,
}

impl JobPurpose {
    pub fn as_str(&self) -> &'static str {
        match self {
            JobPurpose::PreJob => "PREJOB",
            JobPurpose::Work => "WORK",
            JobPurpose::PostJob => "POSTJOB",
            JobPurpose::Cleanup => "CLEANUP",
            JobPurpose::SolutionEvaluation => "SOLUTION",
        }
    }
}

impl FromStr for JobPurpose {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "PREJOB" => Ok(JobPurpose::PreJob),
            "WORK" => Ok(JobPurpose::Work),
            "POSTJOB" => Ok(JobPurpose::PostJob),
            "CLEANUP" => Ok(JobPurpose::Cleanup),
            "SOLUTION" => Ok(JobPurpose::SolutionEvaluation),
            other => Err(format!("unknown job purpose {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_statuses() {
        for s in [
            SimStatus::Queued,
            SimStatus::PreJob,
            SimStatus::Running,
            SimStatus::PostJob,
            SimStatus::Cleanup,
            SimStatus::Done,
            SimStatus::Hold,
        ] {
            assert_eq!(s.as_str().parse::<SimStatus>().unwrap(), s);
        }
        for s in [
            JobStatus::Unsubmitted,
            JobStatus::Pending,
            JobStatus::Active,
            JobStatus::Done,
            JobStatus::Failed,
        ] {
            assert_eq!(s.as_str().parse::<JobStatus>().unwrap(), s);
        }
        for p in [
            JobPurpose::PreJob,
            JobPurpose::Work,
            JobPurpose::PostJob,
            JobPurpose::Cleanup,
            JobPurpose::SolutionEvaluation,
        ] {
            assert_eq!(p.as_str().parse::<JobPurpose>().unwrap(), p);
        }
        assert!("BOGUS".parse::<SimStatus>().is_err());
        assert!("BOGUS".parse::<JobStatus>().is_err());
        assert!("BOGUS".parse::<JobPurpose>().is_err());
    }

    #[test]
    fn happy_path_matches_listing1() {
        let path = SimStatus::happy_path();
        assert_eq!(path[0], SimStatus::Queued);
        assert_eq!(path[5], SimStatus::Done);
        assert!(path[5].is_terminal());
        assert!(!path[0].is_terminal());
        assert!(!SimStatus::Hold.is_terminal());
    }

    #[test]
    fn terminal_job_statuses() {
        assert!(JobStatus::Done.is_terminal());
        assert!(JobStatus::Failed.is_terminal());
        assert!(!JobStatus::Active.is_terminal());
        assert!(!JobStatus::Pending.is_terminal());
    }
}
