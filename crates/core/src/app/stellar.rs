//! The asteroseismology pipeline (the paper's AMP) as a [`ScienceApp`].
//!
//! This is a pure re-packaging: every artifact this implementation emits —
//! staged parameter files, `output.json` model artifacts, `final.json`
//! converged-run summaries, failure detail strings, simulated costs — is
//! byte-identical to the pre-refactor hardwired pipeline (locked by the
//! golden campaign fixture in `tests/app_equivalence.rs`).

use serde::{Deserialize, Serialize};

use super::{FitnessFn, ModelFailure, ModelRun, ParamSpec, ResourceTemplate, ScienceApp};
use crate::marshal;
use crate::models::simulation::{OptimizationSpec, SimKind};
use amp_stellar::{
    cost_minutes, evolve, fitness, iteration_minutes, Domain, ModelOutput, ObservedStar,
    StellarParams,
};

/// Result summary a converged GA run leaves behind (`final.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaRunResult {
    pub best_params: StellarParams,
    pub best_fitness: f64,
    pub generations: u32,
}

/// Fit five stellar parameters to pulsation-frequency observations.
pub struct StellarApp {
    domain: Domain,
    schema: Vec<ParamSpec>,
}

impl StellarApp {
    pub fn new() -> Self {
        let domain = Domain::default();
        let schema = vec![
            ParamSpec {
                name: "mass",
                label: "Mass",
                unit: "M☉",
                lo: domain.mass.lo,
                hi: domain.mass.hi,
                default: 1.0,
            },
            ParamSpec {
                name: "metallicity",
                label: "Metallicity Z",
                unit: "",
                lo: domain.metallicity.lo,
                hi: domain.metallicity.hi,
                default: 0.018,
            },
            ParamSpec {
                name: "helium",
                label: "Helium Y",
                unit: "",
                lo: domain.helium.lo,
                hi: domain.helium.hi,
                default: 0.27,
            },
            ParamSpec {
                name: "alpha",
                label: "Mixing length α",
                unit: "",
                lo: domain.alpha.lo,
                hi: domain.alpha.hi,
                default: 1.9,
            },
            ParamSpec {
                name: "age",
                label: "Age",
                unit: "Gyr",
                lo: domain.age.lo,
                hi: domain.age.hi,
                default: 4.6,
            },
        ];
        StellarApp { domain, schema }
    }

    fn typed(&self, params: &serde_json::Value) -> Result<StellarParams, String> {
        serde_json::from_value(params.clone()).map_err(|e| e.to_string())
    }

    fn summary_rows(m: &ModelOutput) -> Vec<(String, String)> {
        vec![
            ("T<sub>eff</sub>".into(), format!("{:.0} K", m.teff)),
            ("L".into(), format!("{:.3} L☉", m.luminosity)),
            ("R".into(), format!("{:.3} R☉", m.radius)),
            ("log g".into(), format!("{:.3}", m.log_g)),
            ("Δν".into(), format!("{:.2} µHz", m.delta_nu)),
            ("ν<sub>max</sub>".into(), format!("{:.0} µHz", m.nu_max)),
            ("mass".into(), format!("{:.3} M☉", m.params.mass)),
            ("age".into(), format!("{:.2} Gyr", m.params.age)),
        ]
    }
}

impl Default for StellarApp {
    fn default() -> Self {
        Self::new()
    }
}

impl ScienceApp for StellarApp {
    fn id(&self) -> &'static str {
        "stellar"
    }

    fn title(&self) -> &'static str {
        "Asteroseismic Modeling"
    }

    fn description(&self) -> &'static str {
        "Derive the properties of Sun-like stars from observations of \
         their pulsation frequencies: direct ASTEC forward models, or a \
         parallel genetic algorithm fitting mass, metallicity, helium, \
         mixing length, and age."
    }

    fn params(&self) -> &[ParamSpec] {
        &self.schema
    }

    fn model_input(&self, params: &serde_json::Value) -> Result<String, String> {
        Ok(marshal::generate_params_file(&self.typed(params)?))
    }

    fn run_model(&self, input: &str, benchmark_minutes: f64) -> Result<ModelRun, ModelFailure> {
        let params = marshal::parse_params_file(input).map_err(|e| ModelFailure {
            cost_minutes: 0.01,
            detail: format!("bad input: {e}"),
        })?;
        let cost = cost_minutes(&params, benchmark_minutes);
        match evolve(&params, &self.domain) {
            Ok(output) => Ok(ModelRun {
                output: serde_json::to_vec(&output).expect("model output serializes"),
                cost_minutes: cost,
                log: format!("converged; cost {cost:.2} min"),
            }),
            Err(e) => Err(ModelFailure {
                cost_minutes: cost * 0.3,
                detail: format!("model failure: {e}"),
            }),
        }
    }

    fn check_model_output(&self, bytes: &[u8]) -> Result<(), String> {
        serde_json::from_slice::<ModelOutput>(bytes)
            .map(|_| ())
            .map_err(|e| e.to_string())
    }

    fn observation_input(&self, data_json: &str) -> Result<String, String> {
        let observed: ObservedStar = serde_json::from_str(data_json).map_err(|e| e.to_string())?;
        Ok(marshal::generate_observation_file(&observed))
    }

    fn fitness_fn(&self, observations: &str) -> Result<FitnessFn, String> {
        let observed = marshal::parse_observation_file(observations)
            .map_err(|e| format!("bad observations: {e}"))?;
        let domain = self.domain;
        Ok(Box::new(move |phenotype: &[f64]| {
            match domain.decode(phenotype) {
                Ok(params) => fitness(&observed, &params, &domain),
                Err(_) => 0.0,
            }
        }))
    }

    fn generation_minutes(&self, phenotypes: &[Vec<f64>], benchmark_minutes: f64) -> f64 {
        let params: Vec<StellarParams> = phenotypes
            .iter()
            .map(|p| self.domain.decode(p).expect("5-gene phenotype"))
            .collect();
        iteration_minutes(params.iter(), benchmark_minutes)
    }

    fn final_artifact(&self, phenotype: &[f64], fitness: f64, generations: u32) -> Vec<u8> {
        let result = GaRunResult {
            best_params: self.domain.decode(phenotype).expect("5-gene phenotype"),
            best_fitness: fitness,
            generations,
        };
        serde_json::to_vec(&result).expect("result serializes")
    }

    fn final_fitness(&self, bytes: &[u8]) -> Result<f64, String> {
        let result: GaRunResult = serde_json::from_slice(bytes).map_err(|e| e.to_string())?;
        Ok(result.best_fitness)
    }

    fn solution_input(&self, final_bytes: &[u8]) -> Result<String, String> {
        let result: GaRunResult = serde_json::from_slice(final_bytes).map_err(|e| e.to_string())?;
        Ok(marshal::generate_params_file(&result.best_params))
    }

    fn result_summary(
        &self,
        kind: SimKind,
        result_json: &str,
    ) -> Option<(String, Vec<(String, String)>)> {
        match kind {
            SimKind::Direct => {
                let m: ModelOutput = serde_json::from_str(result_json).ok()?;
                Some(("Model output".to_string(), Self::summary_rows(&m)))
            }
            SimKind::Optimization => {
                let v: serde_json::Value = serde_json::from_str(result_json).ok()?;
                let detail: ModelOutput = serde_json::from_value(v.get("detail")?.clone()).ok()?;
                let fitness = v
                    .get("best")
                    .and_then(|b| b.get("best_fitness"))
                    .and_then(|f| f.as_f64())
                    .unwrap_or(0.0);
                let n_runs = v
                    .get("runs")
                    .and_then(|r| r.as_array())
                    .map(|a| a.len())
                    .unwrap_or(0);
                Some((
                    format!("Optimal model (fitness {fitness:.4}, best of {n_runs} GA runs)"),
                    Self::summary_rows(&detail),
                ))
            }
        }
    }

    fn resources(&self) -> ResourceTemplate {
        ResourceTemplate {
            model_cores: 1,
            default_spec: OptimizationSpec::default(),
        }
    }

    // The legacy executable paths: ASTEC and MPIKAIA were installed before
    // the registry existed, and redeploying remote stacks is not free.
    fn model_path(&self) -> String {
        "/amp/bin/astec".to_string()
    }

    fn ga_path(&self) -> String {
        "/amp/bin/mpikaia".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_input_round_trips_typed_params() {
        let app = StellarApp::new();
        let params = serde_json::to_value(&StellarParams::benchmark());
        let text = app.model_input(&params).unwrap();
        assert_eq!(
            marshal::parse_params_file(&text).unwrap(),
            StellarParams::benchmark()
        );
    }

    #[test]
    fn run_model_matches_legacy_failure_strings() {
        let app = StellarApp::new();
        let err = app.run_model("garbage", 20.0).unwrap_err();
        assert!(err.detail.starts_with("bad input:"), "{}", err.detail);
        assert_eq!(err.cost_minutes, 0.01);

        let mut p = StellarParams::benchmark();
        p.mass = 5.0; // out of domain: evolve refuses
        let input = marshal::generate_params_file(&p);
        let err = app.run_model(&input, 20.0).unwrap_err();
        assert!(err.detail.starts_with("model failure:"), "{}", err.detail);
    }

    #[test]
    fn final_artifact_round_trips() {
        let app = StellarApp::new();
        let bytes = app.final_artifact(&[0.5; 5], 0.25, 30);
        assert_eq!(app.final_fitness(&bytes).unwrap(), 0.25);
        let staged = app.solution_input(&bytes).unwrap();
        let params = marshal::parse_params_file(&staged).unwrap();
        assert!(Domain::default().contains(&params));
    }
}
