//! A cheap synthetic second application: damped-sinusoid curve fitting.
//!
//! Modeled on the Astrocomp-style lightweight codes a multi-application
//! portal must host next to the heavyweight pipeline — five parameters,
//! millisecond-class forward models, JSON artifacts throughout. Its job
//! mix is what the `report_apps` bench uses to measure throughput
//! isolation against stellar.

use serde::{Deserialize, Serialize};

use super::{FitnessFn, ModelFailure, ModelRun, ParamSpec, ResourceTemplate, ScienceApp};
use crate::models::simulation::{OptimizationSpec, SimKind};

/// Fraction of the site's stellar benchmark one curve evaluation costs.
/// Deliberately tiny: the whole point of this app is cheap ticks.
const COST_FRACTION: f64 = 0.08;

/// The five fit parameters of `y(t) = A·exp(−λt)·cos(ωt+φ) + c`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurveParams {
    pub amplitude: f64,
    pub decay: f64,
    pub omega: f64,
    pub phase: f64,
    pub offset: f64,
}

impl CurveParams {
    /// Evaluate the model curve at time `t`.
    pub fn eval(&self, t: f64) -> f64 {
        self.amplitude * (-self.decay * t).exp() * (self.omega * t + self.phase).cos() + self.offset
    }
}

/// One observed sample with measurement uncertainty.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurveSample {
    pub t: f64,
    pub y: f64,
    pub sigma: f64,
}

/// An observation set: the `data_json` payload for curvefit observations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CurveObservation {
    pub identifier: String,
    pub samples: Vec<CurveSample>,
}

/// Direct-run artifact (`output.json` for curvefit).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CurveModelOutput {
    pub params: CurveParams,
    /// Oscillation period 2π/ω.
    pub period: f64,
    /// Envelope half-life ln2/λ.
    pub half_life: f64,
    /// Curve value at t = 0.
    pub y0: f64,
}

/// Converged-run artifact (`final.json` for curvefit). The field name
/// `best_fitness` matches the trait's default `final_fitness` extractor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CurveFitRunResult {
    pub best_params: CurveParams,
    pub best_fitness: f64,
    pub generations: u32,
}

/// Synthesize a noisy observation set from ground-truth parameters with a
/// deterministic inline PRNG (amp-core carries no rand dependency).
pub fn synthesize_curve(
    identifier: &str,
    truth: &CurveParams,
    n_samples: usize,
    noise: f64,
    seed: u64,
) -> CurveObservation {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next_unit = move || {
        // xorshift64*: plenty for reproducible synthetic noise.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    };
    let span = 10.0;
    let samples = (0..n_samples)
        .map(|i| {
            let t = span * i as f64 / (n_samples.max(2) - 1) as f64;
            let jitter = (2.0 * next_unit() - 1.0) * noise;
            CurveSample {
                t,
                y: truth.eval(t) + jitter,
                sigma: noise.max(1e-3),
            }
        })
        .collect();
    CurveObservation {
        identifier: identifier.to_string(),
        samples,
    }
}

/// Fit a damped sinusoid to noisy time-series samples.
pub struct CurveFitApp {
    schema: Vec<ParamSpec>,
}

impl CurveFitApp {
    // 6.2832 is the phase bound as shown to users on the submit form —
    // a display-friendly rounding of 2π, deliberately not f64 TAU.
    #[allow(clippy::approx_constant)]
    pub fn new() -> Self {
        let schema = vec![
            ParamSpec {
                name: "amplitude",
                label: "Amplitude",
                unit: "",
                lo: 0.1,
                hi: 5.0,
                default: 1.0,
            },
            ParamSpec {
                name: "decay",
                label: "Decay rate λ",
                unit: "1/s",
                lo: 0.01,
                hi: 2.0,
                default: 0.1,
            },
            ParamSpec {
                name: "omega",
                label: "Angular frequency ω",
                unit: "rad/s",
                lo: 0.5,
                hi: 20.0,
                default: 3.0,
            },
            ParamSpec {
                name: "phase",
                label: "Phase φ",
                unit: "rad",
                lo: 0.0,
                hi: 6.2832,
                default: 0.0,
            },
            ParamSpec {
                name: "offset",
                label: "Offset",
                unit: "",
                lo: -2.0,
                hi: 2.0,
                default: 0.0,
            },
        ];
        CurveFitApp { schema }
    }

    /// Decode a normalized genome into physical fit parameters.
    fn decode(&self, genome: &[f64]) -> Option<CurveParams> {
        if genome.len() != self.schema.len() {
            return None;
        }
        let d: Vec<f64> = self
            .schema
            .iter()
            .zip(genome)
            .map(|(s, g)| s.lo + (s.hi - s.lo) * g.clamp(0.0, 1.0))
            .collect();
        Some(CurveParams {
            amplitude: d[0],
            decay: d[1],
            omega: d[2],
            phase: d[3],
            offset: d[4],
        })
    }

    fn in_domain(&self, p: &CurveParams) -> bool {
        let vals = [p.amplitude, p.decay, p.omega, p.phase, p.offset];
        self.schema
            .iter()
            .zip(vals)
            .all(|(s, v)| v.is_finite() && v >= s.lo && v <= s.hi)
    }

    fn summary_rows(m: &CurveModelOutput) -> Vec<(String, String)> {
        vec![
            ("A".into(), format!("{:.3}", m.params.amplitude)),
            ("λ".into(), format!("{:.3} 1/s", m.params.decay)),
            ("ω".into(), format!("{:.3} rad/s", m.params.omega)),
            ("φ".into(), format!("{:.3} rad", m.params.phase)),
            ("c".into(), format!("{:.3}", m.params.offset)),
            ("period".into(), format!("{:.3} s", m.period)),
            ("half-life".into(), format!("{:.3} s", m.half_life)),
            ("y(0)".into(), format!("{:.3}", m.y0)),
        ]
    }
}

impl Default for CurveFitApp {
    fn default() -> Self {
        Self::new()
    }
}

/// Mean chi-squared of the model curve against an observation set.
fn chi2_per_sample(p: &CurveParams, obs: &CurveObservation) -> f64 {
    if obs.samples.is_empty() {
        return f64::INFINITY;
    }
    let total: f64 = obs
        .samples
        .iter()
        .map(|s| {
            let r = (p.eval(s.t) - s.y) / s.sigma.max(1e-9);
            r * r
        })
        .sum();
    total / obs.samples.len() as f64
}

impl ScienceApp for CurveFitApp {
    fn id(&self) -> &'static str {
        "curvefit"
    }

    fn title(&self) -> &'static str {
        "Damped Oscillator Fitting"
    }

    fn description(&self) -> &'static str {
        "Fit a damped sinusoid to noisy time-series samples: a lightweight \
         synthetic workload exercising the same submit/optimize/results \
         machinery as the stellar pipeline at a fraction of the cost."
    }

    fn params(&self) -> &[ParamSpec] {
        &self.schema
    }

    fn model_input(&self, params: &serde_json::Value) -> Result<String, String> {
        let typed: CurveParams =
            serde_json::from_value(params.clone()).map_err(|e| e.to_string())?;
        Ok(serde_json::to_string(&typed).expect("params serialize"))
    }

    fn run_model(&self, input: &str, benchmark_minutes: f64) -> Result<ModelRun, ModelFailure> {
        let params: CurveParams = serde_json::from_str(input).map_err(|e| ModelFailure {
            cost_minutes: 0.01,
            detail: format!("bad input: {e}"),
        })?;
        let cost = benchmark_minutes * COST_FRACTION;
        if !self.in_domain(&params) {
            return Err(ModelFailure {
                cost_minutes: cost * 0.3,
                detail: "model failure: parameters out of domain".to_string(),
            });
        }
        let output = CurveModelOutput {
            params,
            period: 2.0 * std::f64::consts::PI / params.omega,
            half_life: std::f64::consts::LN_2 / params.decay,
            y0: params.eval(0.0),
        };
        Ok(ModelRun {
            output: serde_json::to_vec(&output).expect("model output serializes"),
            cost_minutes: cost,
            log: format!("curve evaluated; cost {cost:.2} min"),
        })
    }

    fn check_model_output(&self, bytes: &[u8]) -> Result<(), String> {
        serde_json::from_slice::<CurveModelOutput>(bytes)
            .map(|_| ())
            .map_err(|e| e.to_string())
    }

    fn observation_input(&self, data_json: &str) -> Result<String, String> {
        let obs: CurveObservation = serde_json::from_str(data_json).map_err(|e| e.to_string())?;
        Ok(serde_json::to_string(&obs).expect("observation serializes"))
    }

    fn fitness_fn(&self, observations: &str) -> Result<FitnessFn, String> {
        let obs: CurveObservation =
            serde_json::from_str(observations).map_err(|e| format!("bad observations: {e}"))?;
        let schema = self.schema.clone();
        Ok(Box::new(move |phenotype: &[f64]| {
            if phenotype.len() != schema.len() {
                return 0.0;
            }
            let d: Vec<f64> = schema
                .iter()
                .zip(phenotype)
                .map(|(s, g)| s.lo + (s.hi - s.lo) * g.clamp(0.0, 1.0))
                .collect();
            let p = CurveParams {
                amplitude: d[0],
                decay: d[1],
                omega: d[2],
                phase: d[3],
                offset: d[4],
            };
            1.0 / (1.0 + chi2_per_sample(&p, &obs))
        }))
    }

    fn generation_minutes(&self, phenotypes: &[Vec<f64>], benchmark_minutes: f64) -> f64 {
        // All curve evaluations cost the same; one parallel generation is
        // bounded by a single evaluation.
        if phenotypes.is_empty() {
            0.0
        } else {
            benchmark_minutes * COST_FRACTION
        }
    }

    fn final_artifact(&self, phenotype: &[f64], fitness: f64, generations: u32) -> Vec<u8> {
        let result = CurveFitRunResult {
            best_params: self.decode(phenotype).expect("5-gene phenotype"),
            best_fitness: fitness,
            generations,
        };
        serde_json::to_vec(&result).expect("result serializes")
    }

    fn solution_input(&self, final_bytes: &[u8]) -> Result<String, String> {
        let result: CurveFitRunResult =
            serde_json::from_slice(final_bytes).map_err(|e| e.to_string())?;
        Ok(serde_json::to_string(&result.best_params).expect("params serialize"))
    }

    fn result_summary(
        &self,
        kind: SimKind,
        result_json: &str,
    ) -> Option<(String, Vec<(String, String)>)> {
        match kind {
            SimKind::Direct => {
                let m: CurveModelOutput = serde_json::from_str(result_json).ok()?;
                Some(("Fitted curve".to_string(), Self::summary_rows(&m)))
            }
            SimKind::Optimization => {
                let v: serde_json::Value = serde_json::from_str(result_json).ok()?;
                let detail: CurveModelOutput =
                    serde_json::from_value(v.get("detail")?.clone()).ok()?;
                let fitness = v
                    .get("best")
                    .and_then(|b| b.get("best_fitness"))
                    .and_then(|f| f.as_f64())
                    .unwrap_or(0.0);
                let n_runs = v
                    .get("runs")
                    .and_then(|r| r.as_array())
                    .map(|a| a.len())
                    .unwrap_or(0);
                Some((
                    format!("Optimal fit (fitness {fitness:.4}, best of {n_runs} GA runs)"),
                    Self::summary_rows(&detail),
                ))
            }
        }
    }

    fn resources(&self) -> ResourceTemplate {
        ResourceTemplate {
            model_cores: 1,
            default_spec: OptimizationSpec {
                ga_runs: 2,
                population: 24,
                generations: 40,
                cores_per_run: 16,
                seed: 1,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> CurveParams {
        CurveParams {
            amplitude: 1.4,
            decay: 0.25,
            omega: 4.0,
            phase: 0.6,
            offset: 0.3,
        }
    }

    #[test]
    fn synthesize_is_deterministic() {
        let a = synthesize_curve("t-1", &truth(), 40, 0.05, 7);
        let b = synthesize_curve("t-1", &truth(), 40, 0.05, 7);
        assert_eq!(a, b);
        let c = synthesize_curve("t-1", &truth(), 40, 0.05, 8);
        assert_ne!(a, c);
        assert_eq!(a.samples.len(), 40);
    }

    #[test]
    fn model_round_trip_and_failure_strings() {
        let app = CurveFitApp::new();
        let params = serde_json::json!({
            "amplitude": 1.4, "decay": 0.25, "omega": 4.0, "phase": 0.6, "offset": 0.3
        });
        let input = app.model_input(&params).unwrap();
        let run = app.run_model(&input, 20.0).unwrap();
        assert!(app.check_model_output(&run.output).is_ok());
        assert!(run.cost_minutes < 2.0, "curvefit must be cheap");

        let err = app.run_model("garbage", 20.0).unwrap_err();
        assert!(err.detail.starts_with("bad input:"), "{}", err.detail);

        let oob = serde_json::json!({
            "amplitude": 99.0, "decay": 0.25, "omega": 4.0, "phase": 0.6, "offset": 0.3
        });
        let input = app.model_input(&oob).unwrap();
        let err = app.run_model(&input, 20.0).unwrap_err();
        assert!(err.detail.starts_with("model failure:"), "{}", err.detail);
    }

    #[test]
    fn truth_scores_best_fitness() {
        let app = CurveFitApp::new();
        let obs = synthesize_curve("t-2", &truth(), 60, 0.02, 3);
        let staged = app
            .observation_input(&serde_json::to_string(&obs).unwrap())
            .unwrap();
        let f = app.fitness_fn(&staged).unwrap();

        // Encode the truth back to a normalized genome.
        let vals = [1.4, 0.25, 4.0, 0.6, 0.3];
        let genome: Vec<f64> = app
            .params()
            .iter()
            .zip(vals)
            .map(|(s, v)| (v - s.lo) / (s.hi - s.lo))
            .collect();
        let truth_score = f(&genome);
        let wrong_score = f(&[0.9, 0.9, 0.9, 0.9, 0.9]);
        assert!(truth_score > 0.4, "truth fitness {truth_score}");
        assert!(truth_score > wrong_score);
    }

    #[test]
    fn final_artifact_round_trips() {
        let app = CurveFitApp::new();
        let bytes = app.final_artifact(&[0.5; 5], 0.8, 12);
        assert_eq!(app.final_fitness(&bytes).unwrap(), 0.8);
        let staged = app.solution_input(&bytes).unwrap();
        let run = app.run_model(&staged, 20.0).unwrap();
        assert!(app.check_model_output(&run.output).is_ok());
    }
}
