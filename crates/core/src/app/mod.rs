//! The `ScienceApp` abstraction: what a science application must provide
//! to ride the AMP portal/daemon/grid stack.
//!
//! The paper presents a single asteroseismology pipeline, but the portals
//! in its lineage (GRAPPA, Astrocomp) are multi-application gateways. This
//! module extracts everything application-specific out of the workflow
//! engine into one trait: parameter schema and validation, the staged
//! input-file formats, the forward model, the GA search-space coupling,
//! artifact formats, result rendering, and the job resource template. The
//! engine (direct/optimization workflows, the daemon, the portal) treats
//! artifacts as opaque bytes and dispatches through the [`registry`].

pub mod curvefit;
pub mod stellar;

use std::sync::{Arc, OnceLock};

use crate::models::simulation::{OptimizationSpec, SimKind};

/// A compiled fitness function over normalized genomes in `[0,1)^n`,
/// closed over an application's parsed observation set. Boxed so the GA
/// coupling needs no dependency from `amp-core` on the GA crate.
pub type FitnessFn = Box<dyn Fn(&[f64]) -> f64 + Send + Sync>;

/// One searchable/submittable parameter: schema for portal forms,
/// validation bounds, and the GA's search box along this axis.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpec {
    /// Form field / JSON key.
    pub name: &'static str,
    /// Human label for forms and result tables.
    pub label: &'static str,
    /// Display unit ("" when dimensionless).
    pub unit: &'static str,
    pub lo: f64,
    pub hi: f64,
    /// Form default.
    pub default: f64,
}

/// A successful forward-model execution.
#[derive(Debug, Clone)]
pub struct ModelRun {
    /// The mandatory output artifact (staged out as `output.json`).
    pub output: Vec<u8>,
    /// Simulated compute cost in minutes.
    pub cost_minutes: f64,
    /// Human-readable run log.
    pub log: String,
}

/// A failed forward-model execution (cost is still charged).
#[derive(Debug, Clone)]
pub struct ModelFailure {
    pub cost_minutes: f64,
    pub detail: String,
}

/// Per-application job sizing: what the daemon requests from GRAM.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceTemplate {
    /// Cores for a direct / solution-evaluation model job.
    pub model_cores: u32,
    /// Default ensemble shape for optimization submissions.
    pub default_spec: OptimizationSpec,
}

/// A science application pluggable into the AMP stack.
///
/// Implementors own **all** application-specific serialization — staged
/// input files, model output, converged-run artifacts — so the workflow
/// engine can move them around as opaque bytes and an application can be
/// added without touching the daemon, the grid simulator, or the portal.
pub trait ScienceApp: Send + Sync {
    /// Stable identifier threaded through simulation/job/lease rows,
    /// GRAM submit keys, metric labels, and portal routes.
    fn id(&self) -> &'static str;
    fn title(&self) -> &'static str;
    fn description(&self) -> &'static str;

    /// The parameter schema (also the GA search space, one gene per spec).
    fn params(&self) -> &[ParamSpec];

    /// Genome width for optimization runs.
    fn n_genes(&self) -> usize {
        self.params().len()
    }

    /// Validate a direct-run parameter object against the schema: every
    /// parameter present, finite, and within its bounds.
    fn validate_params(&self, params: &serde_json::Value) -> Result<(), String> {
        for spec in self.params() {
            let v = params
                .get(spec.name)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("{} must be a number", spec.name))?;
            if !v.is_finite() || v < spec.lo || v > spec.hi {
                return Err(format!(
                    "{} = {v} outside [{}, {}]",
                    spec.name, spec.lo, spec.hi
                ));
            }
        }
        Ok(())
    }

    /// Render the staged input file for a direct/solution model run.
    fn model_input(&self, params: &serde_json::Value) -> Result<String, String>;

    /// Execute the forward model on a staged input file. The application
    /// formats its own failure strings (they land verbatim in job detail).
    fn run_model(&self, input: &str, benchmark_minutes: f64) -> Result<ModelRun, ModelFailure>;

    /// Validate a staged-out model artifact (postprocess gate).
    fn check_model_output(&self, bytes: &[u8]) -> Result<(), String>;

    /// Render the GA's staged observation input from an observation row's
    /// `data_json`.
    fn observation_input(&self, data_json: &str) -> Result<String, String>;

    /// Compile the fitness function from a staged observation file.
    fn fitness_fn(&self, observations: &str) -> Result<FitnessFn, String>;

    /// Simulated cost of evaluating one GA generation (phenotypes are
    /// normalized genomes).
    fn generation_minutes(&self, phenotypes: &[Vec<f64>], benchmark_minutes: f64) -> f64;

    /// Serialize the converged-run artifact (`final.json`).
    fn final_artifact(&self, phenotype: &[f64], fitness: f64, generations: u32) -> Vec<u8>;

    /// Extract the fitness from a converged-run artifact.
    fn final_fitness(&self, bytes: &[u8]) -> Result<f64, String> {
        let v: serde_json::Value = serde_json::from_slice(bytes).map_err(|e| e.to_string())?;
        v.get("best_fitness")
            .and_then(|f| f.as_f64())
            .ok_or_else(|| "no best_fitness field".to_string())
    }

    /// Render the solution-evaluation input file from the winning run's
    /// converged artifact.
    fn solution_input(&self, final_bytes: &[u8]) -> Result<String, String>;

    /// Render a completed simulation's results as `(heading, rows)` for
    /// the portal. `None` means the payload is unreadable.
    fn result_summary(
        &self,
        kind: SimKind,
        result_json: &str,
    ) -> Option<(String, Vec<(String, String)>)>;

    /// Job sizing for this application.
    fn resources(&self) -> ResourceTemplate;

    /// Remote path of the installed forward-model executable.
    fn model_path(&self) -> String {
        format!("/amp/bin/{}/model", self.id())
    }

    /// Remote path of the installed GA executable.
    fn ga_path(&self) -> String {
        format!("/amp/bin/{}/ga", self.id())
    }
}

/// The built-in application registry.
pub fn builtin() -> &'static [Arc<dyn ScienceApp>] {
    static APPS: OnceLock<Vec<Arc<dyn ScienceApp>>> = OnceLock::new();
    APPS.get_or_init(|| {
        vec![
            Arc::new(stellar::StellarApp::new()),
            Arc::new(curvefit::CurveFitApp::new()),
        ]
    })
}

/// Resolve an application by id.
pub fn lookup(id: &str) -> Option<Arc<dyn ScienceApp>> {
    builtin().iter().find(|a| a.id() == id).cloned()
}

/// Build a parameter object from schema-ordered values (portal form path
/// and test fixtures). Keys are emitted in schema order, which for the
/// stellar application reproduces the legacy `StellarParams` field order.
pub fn params_json(app: &dyn ScienceApp, values: &[f64]) -> serde_json::Value {
    let mut map = serde_json::Map::new();
    for (spec, v) in app.params().iter().zip(values) {
        map.insert(spec.name.to_string(), serde_json::json!(*v));
    }
    serde_json::Value::Object(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_both_builtin_apps() {
        let ids: Vec<&str> = builtin().iter().map(|a| a.id()).collect();
        assert_eq!(ids, vec!["stellar", "curvefit"]);
        assert!(lookup("stellar").is_some());
        assert!(lookup("curvefit").is_some());
        assert!(lookup("nope").is_none());
    }

    #[test]
    fn stellar_keeps_legacy_executable_paths() {
        let app = lookup("stellar").unwrap();
        assert_eq!(app.model_path(), "/amp/bin/astec");
        assert_eq!(app.ga_path(), "/amp/bin/mpikaia");
        let cf = lookup("curvefit").unwrap();
        assert_eq!(cf.model_path(), "/amp/bin/curvefit/model");
        assert_eq!(cf.ga_path(), "/amp/bin/curvefit/ga");
    }

    #[test]
    fn default_validation_enforces_schema_bounds() {
        for app in builtin() {
            let defaults: Vec<f64> = app.params().iter().map(|p| p.default).collect();
            let ok = params_json(app.as_ref(), &defaults);
            assert!(app.validate_params(&ok).is_ok(), "{}", app.id());

            let mut bad = defaults.clone();
            bad[0] = app.params()[0].hi + 1.0;
            let bad = params_json(app.as_ref(), &bad);
            assert!(app.validate_params(&bad).is_err(), "{}", app.id());

            let missing = serde_json::json!({});
            assert!(app.validate_params(&missing).is_err(), "{}", app.id());
        }
    }

    #[test]
    fn genes_match_schema_width() {
        for app in builtin() {
            assert_eq!(app.n_genes(), app.params().len(), "{}", app.id());
        }
    }
}
