//! Strict input/result file marshaling.
//!
//! §3: "All input data from users is marshaled through the SQL database...
//! the input files are regenerated from the database by the GridAMP daemon
//! and then staged to TeraGrid systems. It is thus exceptionally difficult
//! to send any data other than a properly formatted asteroseismology input
//! file to a TeraGrid resource." Generators here emit exactly one rigid
//! line format; parsers reject anything else. `parse(generate(x)) == x`
//! is property-tested.

use amp_stellar::{Constraint, ObservedMode, ObservedStar, StellarParams};
use std::fmt::Write as _;

/// Marshaling failures — always a model/data problem, never a transient.
#[derive(Debug, Clone, PartialEq)]
pub enum MarshalError {
    /// Line didn't match the grammar.
    Syntax { line: usize, detail: String },
    /// Structurally valid but semantically wrong (counts, ranges).
    Semantic(String),
}

impl std::fmt::Display for MarshalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MarshalError::Syntax { line, detail } => {
                write!(f, "input file syntax error on line {line}: {detail}")
            }
            MarshalError::Semantic(d) => write!(f, "input file semantic error: {d}"),
        }
    }
}

impl std::error::Error for MarshalError {}

const HEADER: &str = "# AMP asteroseismology input v1";
const PARAMS_HEADER: &str = "# AMP direct model input v1";

/// Render an observation set as the GA input file staged to the remote
/// system. All floats use `{:.6e}` so the format is locale- and
/// precision-stable.
pub fn generate_observation_file(obs: &ObservedStar) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{HEADER}");
    let _ = writeln!(out, "STAR {}", sanitize_identifier(&obs.identifier));
    if let Some(t) = obs.teff {
        let _ = writeln!(out, "TEFF {:.6e} {:.6e}", t.value, t.sigma);
    }
    if let Some(l) = obs.luminosity {
        let _ = writeln!(out, "LUM {:.6e} {:.6e}", l.value, l.sigma);
    }
    let _ = writeln!(out, "NMODES {}", obs.modes.len());
    for m in &obs.modes {
        let _ = writeln!(
            out,
            "MODE {} {} {:.6e} {:.6e}",
            m.l, m.n, m.frequency, m.sigma
        );
    }
    out.push_str("END\n");
    out
}

/// Identifier characters allowed through to the remote side. Everything
/// else is replaced — input files cannot smuggle shell metacharacters.
fn sanitize_identifier(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == ' ' || c == '-' || c == '+' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Parse a staged observation file (the executable side of the contract).
pub fn parse_observation_file(text: &str) -> Result<ObservedStar, MarshalError> {
    let mut lines = text.lines().enumerate();
    let syntax = |line: usize, detail: &str| MarshalError::Syntax {
        line: line + 1,
        detail: detail.to_string(),
    };

    let (i, first) = lines.next().ok_or_else(|| syntax(0, "empty file"))?;
    if first != HEADER {
        return Err(syntax(i, "missing or wrong header"));
    }

    let mut identifier: Option<String> = None;
    let mut teff = None;
    let mut lum = None;
    let mut nmodes: Option<usize> = None;
    let mut modes: Vec<ObservedMode> = Vec::new();
    let mut ended = false;

    for (i, raw) in lines {
        if ended {
            if !raw.trim().is_empty() {
                return Err(syntax(i, "content after END"));
            }
            continue;
        }
        let mut parts = raw.split_whitespace();
        let Some(tag) = parts.next() else {
            return Err(syntax(i, "blank line inside body"));
        };
        let rest: Vec<&str> = parts.collect();
        match tag {
            "STAR" => {
                if identifier.is_some() {
                    return Err(syntax(i, "duplicate STAR"));
                }
                if rest.is_empty() {
                    return Err(syntax(i, "STAR requires an identifier"));
                }
                identifier = Some(rest.join(" "));
            }
            "TEFF" | "LUM" => {
                let c = parse_constraint(&rest).ok_or_else(|| syntax(i, "expect 2 floats"))?;
                if tag == "TEFF" {
                    if teff.replace(c).is_some() {
                        return Err(syntax(i, "duplicate TEFF"));
                    }
                } else if lum.replace(c).is_some() {
                    return Err(syntax(i, "duplicate LUM"));
                }
            }
            "NMODES" => {
                if nmodes.is_some() {
                    return Err(syntax(i, "duplicate NMODES"));
                }
                let n = rest
                    .first()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| syntax(i, "NMODES requires a count"))?;
                nmodes = Some(n);
            }
            "MODE" => {
                if rest.len() != 4 {
                    return Err(syntax(i, "MODE requires l n freq sigma"));
                }
                let l: u8 = rest[0].parse().map_err(|_| syntax(i, "bad l"))?;
                let n: u32 = rest[1].parse().map_err(|_| syntax(i, "bad n"))?;
                let frequency: f64 = rest[2].parse().map_err(|_| syntax(i, "bad freq"))?;
                let sigma: f64 = rest[3].parse().map_err(|_| syntax(i, "bad sigma"))?;
                if !(frequency.is_finite() && sigma.is_finite()) || sigma <= 0.0 {
                    return Err(syntax(i, "non-finite or non-positive mode values"));
                }
                if l > 3 {
                    return Err(MarshalError::Semantic(format!("mode degree l={l} > 3")));
                }
                modes.push(ObservedMode {
                    l,
                    n,
                    frequency,
                    sigma,
                });
            }
            "END" => ended = true,
            other => return Err(syntax(i, &format!("unknown tag {other:?}"))),
        }
    }

    if !ended {
        return Err(MarshalError::Semantic("missing END".to_string()));
    }
    let identifier = identifier.ok_or_else(|| MarshalError::Semantic("missing STAR".into()))?;
    let nmodes = nmodes.ok_or_else(|| MarshalError::Semantic("missing NMODES".into()))?;
    if nmodes != modes.len() {
        return Err(MarshalError::Semantic(format!(
            "NMODES {} but {} MODE lines",
            nmodes,
            modes.len()
        )));
    }
    Ok(ObservedStar {
        identifier,
        modes,
        teff,
        luminosity: lum,
    })
}

fn parse_constraint(rest: &[&str]) -> Option<Constraint> {
    if rest.len() != 2 {
        return None;
    }
    let value: f64 = rest[0].parse().ok()?;
    let sigma: f64 = rest[1].parse().ok()?;
    if !value.is_finite() || !sigma.is_finite() || sigma <= 0.0 {
        return None;
    }
    Some(Constraint { value, sigma })
}

/// Render a direct-run parameter file (five floats, §2).
pub fn generate_params_file(p: &StellarParams) -> String {
    format!(
        "{PARAMS_HEADER}\nMASS {:.6e}\nZ {:.6e}\nY {:.6e}\nALPHA {:.6e}\nAGE {:.6e}\nEND\n",
        p.mass, p.metallicity, p.helium, p.alpha, p.age
    )
}

/// Parse a direct-run parameter file.
pub fn parse_params_file(text: &str) -> Result<StellarParams, MarshalError> {
    let mut lines = text.lines().enumerate();
    let syntax = |line: usize, detail: &str| MarshalError::Syntax {
        line: line + 1,
        detail: detail.to_string(),
    };
    let (i, first) = lines.next().ok_or_else(|| syntax(0, "empty file"))?;
    if first != PARAMS_HEADER {
        return Err(syntax(i, "missing or wrong header"));
    }
    let mut vals: [Option<f64>; 5] = [None; 5];
    const TAGS: [&str; 5] = ["MASS", "Z", "Y", "ALPHA", "AGE"];
    let mut ended = false;
    for (i, raw) in lines {
        if ended {
            if !raw.trim().is_empty() {
                return Err(syntax(i, "content after END"));
            }
            continue;
        }
        let mut parts = raw.split_whitespace();
        let tag = parts.next().ok_or_else(|| syntax(i, "blank line"))?;
        if tag == "END" {
            ended = true;
            continue;
        }
        let idx = TAGS
            .iter()
            .position(|t| *t == tag)
            .ok_or_else(|| syntax(i, &format!("unknown tag {tag:?}")))?;
        let v: f64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| syntax(i, "expect one float"))?;
        if !v.is_finite() {
            return Err(syntax(i, "non-finite value"));
        }
        if parts.next().is_some() {
            return Err(syntax(i, "trailing tokens"));
        }
        if vals[idx].replace(v).is_some() {
            return Err(syntax(i, &format!("duplicate {tag}")));
        }
    }
    if !ended {
        return Err(MarshalError::Semantic("missing END".into()));
    }
    let get =
        |i: usize| vals[i].ok_or_else(|| MarshalError::Semantic(format!("missing {}", TAGS[i])));
    Ok(StellarParams {
        mass: get(0)?,
        metallicity: get(1)?,
        helium: get(2)?,
        alpha: get(3)?,
        age: get(4)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use amp_stellar::{synthesize, Domain};

    fn sample() -> ObservedStar {
        synthesize(
            "HD 52265",
            &StellarParams::benchmark(),
            &Domain::default(),
            0.15,
            3,
        )
        .unwrap()
    }

    #[test]
    fn observation_roundtrip() {
        let obs = sample();
        let text = generate_observation_file(&obs);
        let parsed = parse_observation_file(&text).unwrap();
        assert_eq!(parsed.identifier, obs.identifier);
        assert_eq!(parsed.modes.len(), obs.modes.len());
        for (a, b) in parsed.modes.iter().zip(obs.modes.iter()) {
            assert_eq!(a.l, b.l);
            assert_eq!(a.n, b.n);
            assert!((a.frequency - b.frequency).abs() < 1e-3);
        }
        assert!(parsed.teff.is_some());
    }

    #[test]
    fn params_roundtrip() {
        let p = StellarParams {
            mass: 1.23,
            metallicity: 0.0213,
            helium: 0.271,
            alpha: 2.05,
            age: 6.7,
        };
        let q = parse_params_file(&generate_params_file(&p)).unwrap();
        assert!((p.mass - q.mass).abs() < 1e-6);
        assert!((p.age - q.age).abs() < 1e-6);
    }

    #[test]
    fn identifier_sanitized() {
        let mut obs = sample();
        obs.identifier = "HD 1; rm -rf / $(evil) `cmd`".into();
        let text = generate_observation_file(&obs);
        assert!(!text.contains(';'));
        assert!(!text.contains('$'));
        assert!(!text.contains('`'));
        assert!(!text.contains('/'));
        let parsed = parse_observation_file(&text).unwrap();
        assert!(parsed.identifier.starts_with("HD 1_"));
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(parse_observation_file("").is_err());
        assert!(parse_observation_file("garbage\n").is_err());
        let obs = sample();
        let good = generate_observation_file(&obs);

        // wrong mode count
        let bad = good.replace(&format!("NMODES {}", obs.modes.len()), "NMODES 2");
        assert!(matches!(
            parse_observation_file(&bad),
            Err(MarshalError::Semantic(_))
        ));

        // missing END
        let bad = good.replace("END\n", "");
        assert!(parse_observation_file(&bad).is_err());

        // unknown tag
        let bad = good.replace("NMODES", "NMOODS");
        assert!(matches!(
            parse_observation_file(&bad),
            Err(MarshalError::Syntax { .. })
        ));

        // trailing content after END
        let bad = format!("{good}EXTRA\n");
        assert!(parse_observation_file(&bad).is_err());

        // impossible mode degree
        let bad = good.replacen("MODE 0", "MODE 9", 1);
        assert!(parse_observation_file(&bad).is_err());
    }

    #[test]
    fn params_rejects_malformed() {
        let p = StellarParams::benchmark();
        let good = generate_params_file(&p);
        assert!(parse_params_file(&good.replace("MASS", "MASSIVE")).is_err());
        assert!(parse_params_file(&good.replace("AGE 9", "AGE nine")).is_err());
        let missing = good.replace("ALPHA 1.900000e0\n", "");
        assert!(parse_params_file(&missing).is_err());
        let dup = good.replace("Z 1.800000e-2\n", "Z 1.800000e-2\nZ 1.800000e-2\n");
        assert!(parse_params_file(&dup).is_err());
        assert!(parse_params_file(&good.replace("AGE 9.500000e0", "AGE inf")).is_err());
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let text = format!("{HEADER}\nBOGUS line\nEND\n");
        match parse_observation_file(&text) {
            Err(MarshalError::Syntax { line, .. }) => assert_eq!(line, 2),
            other => panic!("{other:?}"),
        }
    }
}
