//! Simulation ownership leases.
//!
//! The paper's components communicate *only* through the central database
//! (§3), which makes scaling the GridAMP daemon out to several processes a
//! pure data-plane problem: ownership of each simulation is itself a row.
//! A lease binds one simulation to one daemon until `expires_at`; the
//! `epoch` is a fencing token that increases monotonically on every
//! takeover, so a stale daemon waking from a pause can detect — before any
//! GRAM submission — that the world has moved on without it.

use super::{get_int, get_opt_ts, get_text};
use amp_simdb::orm::Model;
use amp_simdb::{Column, DbError, OnDelete, Row, TableSchema, Value, ValueType};

/// One daemon's claim on one simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct Lease {
    pub id: Option<i64>,
    /// The owned simulation — at most one lease row per simulation.
    pub simulation_id: i64,
    /// Identity of the holding daemon process.
    pub daemon_id: String,
    /// Science application of the leased simulation — keeps lease keys
    /// app-qualified so per-app ownership is observable from the row alone.
    pub app: String,
    /// Fencing token: starts at 1, bumped by every expiry takeover. A
    /// writer whose epoch no longer matches the row must not submit.
    pub epoch: i64,
    /// Simulated-time expiry; an unrenewed lease past this instant may be
    /// taken over by any peer.
    pub expires_at: i64,
}

impl Lease {
    pub fn new(
        simulation_id: i64,
        daemon_id: &str,
        app: &str,
        epoch: i64,
        expires_at: i64,
    ) -> Self {
        Lease {
            id: None,
            simulation_id,
            daemon_id: daemon_id.to_string(),
            app: app.to_string(),
            epoch,
            expires_at,
        }
    }

    /// Valid (unexpired) at `now`?
    pub fn valid_at(&self, now: i64) -> bool {
        now < self.expires_at
    }
}

impl Model for Lease {
    const TABLE: &'static str = "lease";

    fn schema() -> TableSchema {
        TableSchema::new(
            Self::TABLE,
            vec![
                Column::new("simulation_id", ValueType::Int)
                    .not_null()
                    .unique()
                    .references("simulation", OnDelete::Cascade),
                Column::new("daemon_id", ValueType::Text)
                    .not_null()
                    .max_length(64)
                    .indexed(),
                Column::new("app", ValueType::Text)
                    .not_null()
                    .default("stellar"),
                Column::new("epoch", ValueType::Int).not_null().default(1),
                Column::new("expires_at", ValueType::Timestamp).not_null(),
            ],
        )
    }

    fn from_row(id: i64, row: &Row) -> Result<Self, DbError> {
        Ok(Lease {
            id: Some(id),
            simulation_id: get_int::<Self>(row, "simulation_id")?,
            daemon_id: get_text::<Self>(row, "daemon_id")?,
            app: get_text::<Self>(row, "app")?,
            epoch: get_int::<Self>(row, "epoch")?,
            expires_at: get_opt_ts::<Self>(row, "expires_at")?.unwrap_or_default(),
        })
    }

    fn to_values(&self) -> Vec<(&'static str, Value)> {
        vec![
            ("simulation_id", self.simulation_id.into()),
            ("daemon_id", self.daemon_id.clone().into()),
            ("app", self.app.clone().into()),
            ("epoch", self.epoch.into()),
            ("expires_at", Value::Timestamp(self.expires_at)),
        ]
    }

    fn id(&self) -> Option<i64> {
        self.id
    }

    fn set_id(&mut self, id: i64) {
        self.id = Some(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validity_boundary_is_exclusive() {
        let l = Lease::new(1, "d0", "stellar", 1, 1000);
        assert!(l.valid_at(999));
        assert!(!l.valid_at(1000));
        assert!(!l.valid_at(2000));
    }

    #[test]
    fn round_trips_through_row() {
        let l = Lease::new(7, "gridamp-3", "curvefit", 4, 86_400);
        let row: Row = l.to_values().into_iter().map(|(_, v)| v).collect();
        let back = Lease::from_row(42, &row).unwrap();
        assert_eq!(back.id, Some(42));
        assert_eq!(back.simulation_id, 7);
        assert_eq!(back.daemon_id, "gridamp-3");
        assert_eq!(back.app, "curvefit");
        assert_eq!(back.epoch, 4);
        assert_eq!(back.expires_at, 86_400);
    }
}
