//! TeraGrid allocations and per-user submit authorizations.
//!
//! §4.1: "administrative tasks such as ... adjusting back-end parameters
//! (like allocations and the authorization for a user to submit to a
//! machine using a particular allocation) can easily be manipulated from a
//! graphical interface" — these are those two tables, plus the SU
//! accounting that Table 1's charge factors feed.

use super::{get_bool, get_float, get_int, get_text};
use amp_simdb::orm::{Manager, Model};
use amp_simdb::{Column, DbError, OnDelete, Row, TableSchema, Value, ValueType};

/// A service-unit allocation on one TeraGrid system.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    pub id: Option<i64>,
    /// Site name ("kraken").
    pub system: String,
    /// Charge account, e.g. "TG-AST090030".
    pub account: String,
    /// SUs granted.
    pub su_granted: f64,
    /// SUs consumed so far.
    pub su_used: f64,
    /// Whether new submissions may charge this allocation.
    pub active: bool,
}

impl Allocation {
    pub fn new(system: &str, account: &str, su_granted: f64) -> Self {
        Allocation {
            id: None,
            system: system.to_string(),
            account: account.to_string(),
            su_granted,
            su_used: 0.0,
            active: true,
        }
    }

    pub fn su_remaining(&self) -> f64 {
        (self.su_granted - self.su_used).max(0.0)
    }

    /// Record a charge (CPU-hours × the system's SU factor). Fails if the
    /// allocation would go negative — AMP must not submit unfunded work.
    pub fn charge(&mut self, sus: f64) -> Result<(), DbError> {
        if sus < 0.0 {
            return Err(DbError::Schema("negative SU charge".to_string()));
        }
        if self.su_used + sus > self.su_granted {
            return Err(DbError::Schema(format!(
                "allocation {} exhausted: {} used + {} > {} granted",
                self.account, self.su_used, sus, self.su_granted
            )));
        }
        self.su_used += sus;
        Ok(())
    }
}

impl Model for Allocation {
    const TABLE: &'static str = "allocation";

    fn schema() -> TableSchema {
        TableSchema::new(
            Self::TABLE,
            vec![
                Column::new("system", ValueType::Text)
                    .not_null()
                    .max_length(32),
                Column::new("account", ValueType::Text)
                    .not_null()
                    .unique()
                    .max_length(32),
                Column::new("su_granted", ValueType::Float).not_null(),
                Column::new("su_used", ValueType::Float)
                    .not_null()
                    .default(0.0),
                Column::new("active", ValueType::Bool)
                    .not_null()
                    .default(true),
            ],
        )
    }

    fn from_row(id: i64, row: &Row) -> Result<Self, DbError> {
        Ok(Allocation {
            id: Some(id),
            system: get_text::<Self>(row, "system")?,
            account: get_text::<Self>(row, "account")?,
            su_granted: get_float::<Self>(row, "su_granted")?,
            su_used: get_float::<Self>(row, "su_used")?,
            active: get_bool::<Self>(row, "active")?,
        })
    }

    fn to_values(&self) -> Vec<(&'static str, Value)> {
        vec![
            ("system", self.system.clone().into()),
            ("account", self.account.clone().into()),
            ("su_granted", self.su_granted.into()),
            ("su_used", self.su_used.into()),
            ("active", self.active.into()),
        ]
    }

    fn id(&self) -> Option<i64> {
        self.id
    }

    fn set_id(&mut self, id: i64) {
        self.id = Some(id);
    }
}

/// Authorization for a user to submit to a machine via an allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemAuthorization {
    pub id: Option<i64>,
    pub user_id: i64,
    pub allocation_id: i64,
    pub granted_at: i64,
}

impl SystemAuthorization {
    pub fn new(user_id: i64, allocation_id: i64, at: i64) -> Self {
        SystemAuthorization {
            id: None,
            user_id,
            allocation_id,
            granted_at: at,
        }
    }

    /// Is `user` authorized for `allocation`? (Portal submission check.)
    pub fn is_authorized(
        manager: &Manager<SystemAuthorization>,
        user_id: i64,
        allocation_id: i64,
    ) -> Result<bool, DbError> {
        manager.exists(
            &amp_simdb::Query::new()
                .eq("user_id", user_id)
                .eq("allocation_id", allocation_id),
        )
    }
}

impl Model for SystemAuthorization {
    const TABLE: &'static str = "system_authorization";

    fn schema() -> TableSchema {
        TableSchema::new(
            Self::TABLE,
            vec![
                Column::new("user_id", ValueType::Int)
                    .not_null()
                    .references("amp_user", OnDelete::Cascade)
                    .indexed(),
                Column::new("allocation_id", ValueType::Int)
                    .not_null()
                    .references("allocation", OnDelete::Cascade)
                    .indexed(),
                Column::new("granted_at", ValueType::Int)
                    .not_null()
                    .default(0),
            ],
        )
    }

    fn from_row(id: i64, row: &Row) -> Result<Self, DbError> {
        Ok(SystemAuthorization {
            id: Some(id),
            user_id: get_int::<Self>(row, "user_id")?,
            allocation_id: get_int::<Self>(row, "allocation_id")?,
            granted_at: get_int::<Self>(row, "granted_at")?,
        })
    }

    fn to_values(&self) -> Vec<(&'static str, Value)> {
        vec![
            ("user_id", self.user_id.into()),
            ("allocation_id", self.allocation_id.into()),
            ("granted_at", self.granted_at.into()),
        ]
    }

    fn id(&self) -> Option<i64> {
        self.id
    }

    fn set_id(&mut self, id: i64) {
        self.id = Some(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accounting() {
        let mut a = Allocation::new("kraken", "TG-AST090030", 100_000.0);
        assert_eq!(a.su_remaining(), 100_000.0);
        a.charge(51_486.0).unwrap(); // one Kraken optimization run
        assert!((a.su_remaining() - 48_514.0).abs() < 1e-9);
        // a second run does not fit
        assert!(a.charge(51_486.0).is_err());
        assert!(
            (a.su_used - 51_486.0).abs() < 1e-9,
            "failed charge must not apply"
        );
        assert!(a.charge(-1.0).is_err());
    }

    #[test]
    fn remaining_never_negative() {
        let mut a = Allocation::new("kraken", "TG-X", 10.0);
        a.su_used = 50.0; // e.g. adjusted by admin
        assert_eq!(a.su_remaining(), 0.0);
    }
}
