//! The core AMP application's data models.
//!
//! §4.1: "we implemented most of the science gateway functionality in a
//! single core application consisting of ORM models and support routines.
//! ... the catalog of stars, their identifiers, the simulations, and the
//! constituent supercomputer jobs are all stored in this core application."
//! These are those models; both the portal and the GridAMP daemon import
//! them (the paper's single-codebase "don't repeat yourself" decision).

pub mod allocation;
pub mod job;
pub mod lease;
pub mod notification;
pub mod simulation;
pub mod star;
pub mod user;

pub use allocation::{Allocation, SystemAuthorization};
pub use job::GridJobRecord;
pub use lease::Lease;
pub use notification::{Notification, NotifyMode};
pub use simulation::{SimKind, Simulation};
pub use star::{Observation, Star};
pub use user::AmpUser;

use amp_simdb::orm::{row_value, Model};
use amp_simdb::{DbError, Row, Value};

// Typed row readers shared by the Model implementations below.

pub(crate) fn get_text<M: Model>(row: &Row, col: &str) -> Result<String, DbError> {
    Ok(row_value::<M>(row, col)?
        .as_text()
        .unwrap_or_default()
        .to_string())
}

pub(crate) fn get_opt_text<M: Model>(row: &Row, col: &str) -> Result<Option<String>, DbError> {
    Ok(row_value::<M>(row, col)?.as_text().map(str::to_string))
}

pub(crate) fn get_int<M: Model>(row: &Row, col: &str) -> Result<i64, DbError> {
    Ok(row_value::<M>(row, col)?.as_int().unwrap_or_default())
}

pub(crate) fn get_opt_int<M: Model>(row: &Row, col: &str) -> Result<Option<i64>, DbError> {
    Ok(row_value::<M>(row, col)?.as_int())
}

pub(crate) fn get_float<M: Model>(row: &Row, col: &str) -> Result<f64, DbError> {
    Ok(row_value::<M>(row, col)?.as_float().unwrap_or_default())
}

pub(crate) fn get_bool<M: Model>(row: &Row, col: &str) -> Result<bool, DbError> {
    Ok(row_value::<M>(row, col)?.as_bool().unwrap_or_default())
}

pub(crate) fn get_opt_ts<M: Model>(row: &Row, col: &str) -> Result<Option<i64>, DbError> {
    Ok(row_value::<M>(row, col)?.as_timestamp())
}

pub(crate) fn opt_ts(v: Option<i64>) -> Value {
    match v {
        Some(t) => Value::Timestamp(t),
        None => Value::Null,
    }
}
