//! Simulations: the user-facing unit of work.
//!
//! AMP supports two execution modes (§2): the trivial "direct model run"
//! (five parameters, one processor, minutes) and the "optimization run"
//! (an ensemble of GA runs on 512 processors for days). Both are rows in
//! this table; their status is the top of the two-level workflow state
//! (§4.4), so the portal renders progress without inspecting grid jobs.

use super::{get_float, get_int, get_opt_ts, get_text, opt_ts};
use crate::status::SimStatus;
use amp_simdb::orm::Model;
use amp_simdb::{Column, DbError, OnDelete, Row, TableSchema, Value, ValueType};
use amp_stellar::StellarParams;
use serde::{Deserialize, Serialize};
use std::str::FromStr;

/// Which kind of simulation this row is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimKind {
    Direct,
    Optimization,
}

impl SimKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            SimKind::Direct => "direct",
            SimKind::Optimization => "optimization",
        }
    }
}

impl FromStr for SimKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "direct" => Ok(SimKind::Direct),
            "optimization" => Ok(SimKind::Optimization),
            other => Err(format!("unknown simulation kind {other:?}")),
        }
    }
}

/// Parameters of an optimization run — the paper's Kepler configuration by
/// default: 4 independent GA runs × 126 stars × 200 iterations on 128
/// processors each.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizationSpec {
    pub ga_runs: u32,
    pub population: u32,
    pub generations: u32,
    pub cores_per_run: u32,
    /// Base seed; each GA run derives its own (§2: "randomly generated
    /// seed parameters").
    pub seed: u64,
}

impl Default for OptimizationSpec {
    fn default() -> Self {
        OptimizationSpec {
            ga_runs: 4,
            population: 126,
            generations: 200,
            cores_per_run: 128,
            seed: 1,
        }
    }
}

impl OptimizationSpec {
    /// Total processors the ensemble occupies (paper: 512).
    pub fn total_cores(&self) -> u32 {
        self.ga_runs * self.cores_per_run
    }
}

/// The typed payload stored in `params_json`. Direct parameters are an
/// application-defined JSON object (validated against the owning
/// [`crate::app::ScienceApp`] schema); for the stellar application the
/// object is exactly the legacy `StellarParams` serialization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SimPayload {
    Direct {
        params: serde_json::Value,
    },
    Optimization {
        spec: OptimizationSpec,
        observation_id: i64,
    },
}

/// One simulation row.
#[derive(Debug, Clone, PartialEq)]
pub struct Simulation {
    pub id: Option<i64>,
    pub star_id: i64,
    pub owner_id: i64,
    pub kind: SimKind,
    /// Which science application this simulation belongs to (registry id).
    pub app: String,
    pub payload_json: String,
    pub status: SimStatus,
    /// Plain-text situation note shown with the status (§4.4: transients
    /// supplement the display "with a plain-text message").
    pub status_message: String,
    /// Target system (site name).
    pub system: String,
    pub allocation_id: i64,
    pub created_at: i64,
    pub started_at: Option<i64>,
    pub completed_at: Option<i64>,
    /// Fractional progress in \[0,1] from partial-result interpretation.
    pub progress: f64,
    /// Final results (serialized model output / best parameters).
    pub result_json: Option<String>,
    /// When status is Hold: the state the workflow was in when the model
    /// failure occurred, so an administrator resume continues exactly there
    /// (§4.4: "once the problem has been resolved, the workflow resumes
    /// automatically").
    pub held_from: Option<String>,
}

impl Simulation {
    /// A direct run for an arbitrary registered application; `params` must
    /// satisfy that application's schema.
    pub fn direct_for(
        app: &str,
        star_id: i64,
        owner_id: i64,
        params: serde_json::Value,
        system: &str,
        allocation_id: i64,
        at: i64,
    ) -> Self {
        Simulation {
            id: None,
            star_id,
            owner_id,
            kind: SimKind::Direct,
            app: app.to_string(),
            payload_json: serde_json::to_string(&SimPayload::Direct { params })
                .expect("payload serializes"),
            status: SimStatus::Queued,
            status_message: String::new(),
            system: system.to_string(),
            allocation_id,
            created_at: at,
            started_at: None,
            completed_at: None,
            progress: 0.0,
            result_json: None,
            held_from: None,
        }
    }

    /// An optimization run for an arbitrary registered application.
    #[allow(clippy::too_many_arguments)]
    pub fn optimization_for(
        app: &str,
        star_id: i64,
        owner_id: i64,
        spec: OptimizationSpec,
        observation_id: i64,
        system: &str,
        allocation_id: i64,
        at: i64,
    ) -> Self {
        Simulation {
            id: None,
            star_id,
            owner_id,
            kind: SimKind::Optimization,
            app: app.to_string(),
            payload_json: serde_json::to_string(&SimPayload::Optimization {
                spec,
                observation_id,
            })
            .expect("payload serializes"),
            status: SimStatus::Queued,
            status_message: String::new(),
            system: system.to_string(),
            allocation_id,
            created_at: at,
            started_at: None,
            completed_at: None,
            progress: 0.0,
            result_json: None,
            held_from: None,
        }
    }

    /// A stellar direct run (the original single-application API).
    pub fn new_direct(
        star_id: i64,
        owner_id: i64,
        params: StellarParams,
        system: &str,
        allocation_id: i64,
        at: i64,
    ) -> Self {
        Self::direct_for(
            "stellar",
            star_id,
            owner_id,
            serde_json::to_value(&params),
            system,
            allocation_id,
            at,
        )
    }

    /// A stellar optimization run (the original single-application API).
    pub fn new_optimization(
        star_id: i64,
        owner_id: i64,
        spec: OptimizationSpec,
        observation_id: i64,
        system: &str,
        allocation_id: i64,
        at: i64,
    ) -> Self {
        Self::optimization_for(
            "stellar",
            star_id,
            owner_id,
            spec,
            observation_id,
            system,
            allocation_id,
            at,
        )
    }

    pub fn payload(&self) -> Result<SimPayload, DbError> {
        serde_json::from_str(&self.payload_json)
            .map_err(|e| DbError::Corrupt(format!("simulation payload: {e}")))
    }
}

impl Model for Simulation {
    const TABLE: &'static str = "simulation";

    fn schema() -> TableSchema {
        TableSchema::new(
            Self::TABLE,
            vec![
                Column::new("star_id", ValueType::Int)
                    .not_null()
                    .references("star", OnDelete::Restrict)
                    .indexed(),
                Column::new("owner_id", ValueType::Int)
                    .not_null()
                    .references("amp_user", OnDelete::Restrict)
                    .indexed(),
                Column::new("kind", ValueType::Text).not_null(),
                Column::new("app", ValueType::Text)
                    .not_null()
                    .default("stellar")
                    .indexed(),
                Column::new("payload_json", ValueType::Text).not_null(),
                Column::new("status", ValueType::Text).not_null().indexed(),
                Column::new("status_message", ValueType::Text)
                    .not_null()
                    .default(""),
                Column::new("system", ValueType::Text)
                    .not_null()
                    .max_length(32),
                Column::new("allocation_id", ValueType::Int)
                    .not_null()
                    .references("allocation", OnDelete::Restrict),
                Column::new("created_at", ValueType::Int).not_null(),
                Column::new("started_at", ValueType::Timestamp),
                Column::new("completed_at", ValueType::Timestamp),
                Column::new("progress", ValueType::Float)
                    .not_null()
                    .default(0.0),
                Column::new("result_json", ValueType::Text),
                Column::new("held_from", ValueType::Text).max_length(16),
            ],
        )
    }

    fn from_row(id: i64, row: &Row) -> Result<Self, DbError> {
        Ok(Simulation {
            id: Some(id),
            star_id: get_int::<Self>(row, "star_id")?,
            owner_id: get_int::<Self>(row, "owner_id")?,
            kind: get_text::<Self>(row, "kind")?
                .parse()
                .map_err(DbError::Schema)?,
            app: get_text::<Self>(row, "app")?,
            payload_json: get_text::<Self>(row, "payload_json")?,
            status: get_text::<Self>(row, "status")?
                .parse()
                .map_err(DbError::Schema)?,
            status_message: get_text::<Self>(row, "status_message")?,
            system: get_text::<Self>(row, "system")?,
            allocation_id: get_int::<Self>(row, "allocation_id")?,
            created_at: get_int::<Self>(row, "created_at")?,
            started_at: get_opt_ts::<Self>(row, "started_at")?,
            completed_at: get_opt_ts::<Self>(row, "completed_at")?,
            progress: get_float::<Self>(row, "progress")?,
            result_json: super::get_opt_text::<Self>(row, "result_json")?,
            held_from: super::get_opt_text::<Self>(row, "held_from")?,
        })
    }

    fn to_values(&self) -> Vec<(&'static str, Value)> {
        vec![
            ("star_id", self.star_id.into()),
            ("owner_id", self.owner_id.into()),
            ("kind", self.kind.as_str().into()),
            ("app", self.app.clone().into()),
            ("payload_json", self.payload_json.clone().into()),
            ("status", self.status.as_str().into()),
            ("status_message", self.status_message.clone().into()),
            ("system", self.system.clone().into()),
            ("allocation_id", self.allocation_id.into()),
            ("created_at", self.created_at.into()),
            ("started_at", opt_ts(self.started_at)),
            ("completed_at", opt_ts(self.completed_at)),
            ("progress", self.progress.into()),
            ("result_json", self.result_json.clone().into()),
            ("held_from", self.held_from.clone().into()),
        ]
    }

    fn id(&self) -> Option<i64> {
        self.id
    }

    fn set_id(&mut self, id: i64) {
        self.id = Some(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrip() {
        assert_eq!("direct".parse::<SimKind>().unwrap(), SimKind::Direct);
        assert_eq!(
            "optimization".parse::<SimKind>().unwrap(),
            SimKind::Optimization
        );
        assert!("other".parse::<SimKind>().is_err());
    }

    #[test]
    fn kepler_spec_matches_paper() {
        let spec = OptimizationSpec::default();
        assert_eq!(spec.total_cores(), 512);
        assert_eq!(spec.population, 126);
        assert_eq!(spec.generations, 200);
    }

    #[test]
    fn payload_roundtrip() {
        let sim = Simulation::new_direct(1, 1, StellarParams::benchmark(), "kraken", 1, 0);
        assert_eq!(sim.app, "stellar");
        match sim.payload().unwrap() {
            SimPayload::Direct { params } => {
                assert_eq!(params, serde_json::to_value(&StellarParams::benchmark()))
            }
            _ => panic!(),
        }
        let sim =
            Simulation::new_optimization(1, 1, OptimizationSpec::default(), 9, "kraken", 1, 0);
        match sim.payload().unwrap() {
            SimPayload::Optimization {
                spec,
                observation_id,
            } => {
                assert_eq!(spec, OptimizationSpec::default());
                assert_eq!(observation_id, 9);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn new_simulations_start_queued() {
        let sim = Simulation::new_direct(1, 1, StellarParams::benchmark(), "kraken", 1, 42);
        assert_eq!(sim.status, SimStatus::Queued);
        assert_eq!(sim.created_at, 42);
        assert_eq!(sim.progress, 0.0);
        assert!(sim.result_json.is_none());
    }
}
