//! The local star catalog and uploaded observation sets.
//!
//! §4.2: users browse/search the catalog; targets missing locally are
//! fetched from SIMBAD and imported. The search-suggest feature highlights
//! "stars with results or in the Kepler catalog", so both flags are
//! denormalized onto the row.

use super::{get_bool, get_float, get_int, get_opt_int, get_opt_text, get_text};
use amp_simdb::orm::Model;
use amp_simdb::{Column, DbError, OnDelete, Row, TableSchema, Value, ValueType};
use amp_stellar::ObservedStar;

/// A catalog star as stored by the gateway.
#[derive(Debug, Clone, PartialEq)]
pub struct Star {
    pub id: Option<i64>,
    /// Canonical display identifier ("HD 52265", "KIC 8006161").
    pub identifier: String,
    /// Common name, if any.
    pub name: Option<String>,
    pub hd_number: Option<i64>,
    pub kic_number: Option<i64>,
    pub ra: f64,
    pub dec: f64,
    pub vmag: f64,
    pub in_kepler_field: bool,
    /// "local" or "simbad" (import provenance).
    pub source: String,
    /// Denormalized: completed simulation results exist (search suggest).
    pub has_results: bool,
}

impl Star {
    pub fn from_catalog(entry: &amp_stellar::CatalogStar, source: &str) -> Self {
        Star {
            id: None,
            identifier: entry.identifier(),
            name: entry.name.clone(),
            hd_number: entry.hd_number.map(|n| n as i64),
            kic_number: entry.kic_number.map(|n| n as i64),
            ra: entry.ra,
            dec: entry.dec,
            vmag: entry.vmag,
            in_kepler_field: entry.in_kepler_field,
            source: source.to_string(),
            has_results: false,
        }
    }
}

impl Model for Star {
    const TABLE: &'static str = "star";

    fn schema() -> TableSchema {
        TableSchema::new(
            Self::TABLE,
            vec![
                Column::new("identifier", ValueType::Text)
                    .not_null()
                    .unique()
                    .max_length(64),
                Column::new("name", ValueType::Text).max_length(100),
                Column::new("hd_number", ValueType::Int).indexed(),
                Column::new("kic_number", ValueType::Int).indexed(),
                Column::new("ra", ValueType::Float).not_null(),
                Column::new("dec", ValueType::Float).not_null(),
                Column::new("vmag", ValueType::Float).not_null(),
                Column::new("in_kepler_field", ValueType::Bool)
                    .not_null()
                    .default(false),
                Column::new("source", ValueType::Text)
                    .not_null()
                    .default("local"),
                Column::new("has_results", ValueType::Bool)
                    .not_null()
                    .default(false),
            ],
        )
    }

    fn from_row(id: i64, row: &Row) -> Result<Self, DbError> {
        Ok(Star {
            id: Some(id),
            identifier: get_text::<Self>(row, "identifier")?,
            name: get_opt_text::<Self>(row, "name")?,
            hd_number: get_opt_int::<Self>(row, "hd_number")?,
            kic_number: get_opt_int::<Self>(row, "kic_number")?,
            ra: get_float::<Self>(row, "ra")?,
            dec: get_float::<Self>(row, "dec")?,
            vmag: get_float::<Self>(row, "vmag")?,
            in_kepler_field: get_bool::<Self>(row, "in_kepler_field")?,
            source: get_text::<Self>(row, "source")?,
            has_results: get_bool::<Self>(row, "has_results")?,
        })
    }

    fn to_values(&self) -> Vec<(&'static str, Value)> {
        vec![
            ("identifier", self.identifier.clone().into()),
            ("name", self.name.clone().into()),
            ("hd_number", self.hd_number.into()),
            ("kic_number", self.kic_number.into()),
            ("ra", self.ra.into()),
            ("dec", self.dec.into()),
            ("vmag", self.vmag.into()),
            ("in_kepler_field", self.in_kepler_field.into()),
            ("source", self.source.clone().into()),
            ("has_results", self.has_results.into()),
        ]
    }

    fn id(&self) -> Option<i64> {
        self.id
    }

    fn set_id(&mut self, id: i64) {
        self.id = Some(id);
    }
}

/// An uploaded observation set for a star (frequencies + constraints),
/// stored as the canonical serialized form that the marshaling layer
/// regenerates input files from (§3: "the input files are regenerated from
/// the database").
///
/// The payload is application-defined: stellar simulations store a
/// serialized `ObservedStar`, other science applications store whatever
/// their [`ScienceApp::observation_input`] hook expects.
///
/// [`ScienceApp::observation_input`]: crate::app::ScienceApp::observation_input
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    pub id: Option<i64>,
    pub star_id: i64,
    pub uploaded_by: i64,
    /// Application-defined serialized observation set (for stellar, an
    /// `ObservedStar`).
    pub data_json: String,
    pub created_at: i64,
}

impl Observation {
    pub fn new(star_id: i64, uploaded_by: i64, obs: &ObservedStar, at: i64) -> Self {
        Observation {
            id: None,
            star_id,
            uploaded_by,
            data_json: serde_json::to_string(obs).expect("observed star serializes"),
            created_at: at,
        }
    }

    /// An observation set with an already-serialized, application-defined
    /// payload (the multi-application upload path).
    pub fn from_data_json(
        star_id: i64,
        uploaded_by: i64,
        data_json: impl Into<String>,
        at: i64,
    ) -> Self {
        Observation {
            id: None,
            star_id,
            uploaded_by,
            data_json: data_json.into(),
            created_at: at,
        }
    }

    /// Decode the stored observation set.
    pub fn observed(&self) -> Result<ObservedStar, DbError> {
        serde_json::from_str(&self.data_json)
            .map_err(|e| DbError::Corrupt(format!("observation {e}")))
    }
}

impl Model for Observation {
    const TABLE: &'static str = "observation";

    fn schema() -> TableSchema {
        TableSchema::new(
            Self::TABLE,
            vec![
                Column::new("star_id", ValueType::Int)
                    .not_null()
                    .references("star", OnDelete::Cascade)
                    .indexed(),
                Column::new("uploaded_by", ValueType::Int)
                    .not_null()
                    .references("amp_user", OnDelete::Restrict),
                Column::new("data_json", ValueType::Text).not_null(),
                Column::new("created_at", ValueType::Int).not_null(),
            ],
        )
    }

    fn from_row(id: i64, row: &Row) -> Result<Self, DbError> {
        Ok(Observation {
            id: Some(id),
            star_id: get_int::<Self>(row, "star_id")?,
            uploaded_by: get_int::<Self>(row, "uploaded_by")?,
            data_json: get_text::<Self>(row, "data_json")?,
            created_at: get_int::<Self>(row, "created_at")?,
        })
    }

    fn to_values(&self) -> Vec<(&'static str, Value)> {
        vec![
            ("star_id", self.star_id.into()),
            ("uploaded_by", self.uploaded_by.into()),
            ("data_json", self.data_json.clone().into()),
            ("created_at", self.created_at.into()),
        ]
    }

    fn id(&self) -> Option<i64> {
        self.id
    }

    fn set_id(&mut self, id: i64) {
        self.id = Some(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amp_stellar::{famous_stars, synthesize, Domain, StellarParams};

    #[test]
    fn star_from_catalog_entry() {
        let famous = famous_stars();
        let s = Star::from_catalog(&famous[0], "simbad");
        assert_eq!(s.identifier, "HD 128620");
        assert_eq!(s.name.as_deref(), Some("Alpha Centauri"));
        assert_eq!(s.source, "simbad");
        assert!(!s.has_results);
    }

    #[test]
    fn observation_roundtrip() {
        let obs = synthesize(
            "KIC 1",
            &StellarParams::benchmark(),
            &Domain::default(),
            0.1,
            1,
        )
        .unwrap();
        let rec = Observation::new(1, 1, &obs, 500);
        let decoded = rec.observed().unwrap();
        assert_eq!(decoded, obs);
    }

    #[test]
    fn corrupt_observation_detected() {
        let rec = Observation {
            id: None,
            star_id: 1,
            uploaded_by: 1,
            data_json: "not json".into(),
            created_at: 0,
        };
        assert!(rec.observed().is_err());
    }
}
