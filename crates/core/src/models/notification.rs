//! Notification preferences and the simulated e-mail outbox.
//!
//! §4.4: "Users may opt to receive an e-mail when their simulation
//! completes or to receive e-mails at each state transition", transients
//! notify only administrators, and model failures notify both. We have no
//! SMTP; `Notification` rows are the outbox (their observable content is
//! what the paper's behaviour prescribes).

use super::{get_bool, get_int, get_opt_int, get_text};
use amp_simdb::orm::Model;
use amp_simdb::{Column, DbError, OnDelete, Row, TableSchema, Value, ValueType};
use std::str::FromStr;

/// A user's e-mail preference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NotifyMode {
    /// No mail at all.
    None,
    /// One mail when the simulation completes (default).
    OnCompletion,
    /// Mail at every workflow state transition.
    EveryTransition,
}

impl NotifyMode {
    pub fn as_str(&self) -> &'static str {
        match self {
            NotifyMode::None => "none",
            NotifyMode::OnCompletion => "on_completion",
            NotifyMode::EveryTransition => "every_transition",
        }
    }
}

impl FromStr for NotifyMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" => Ok(NotifyMode::None),
            "on_completion" => Ok(NotifyMode::OnCompletion),
            "every_transition" => Ok(NotifyMode::EveryTransition),
            other => Err(format!("unknown notify mode {other:?}")),
        }
    }
}

/// Who a notification targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Audience {
    User,
    Administrator,
}

impl Audience {
    pub fn as_str(&self) -> &'static str {
        match self {
            Audience::User => "user",
            Audience::Administrator => "admin",
        }
    }
}

impl FromStr for Audience {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "user" => Ok(Audience::User),
            "admin" => Ok(Audience::Administrator),
            other => Err(format!("unknown audience {other:?}")),
        }
    }
}

/// One outbox entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Notification {
    pub id: Option<i64>,
    /// Recipient user (None for administrator broadcasts).
    pub user_id: Option<i64>,
    /// Related simulation, if any.
    pub simulation_id: Option<i64>,
    pub audience: Audience,
    pub subject: String,
    pub body: String,
    pub created_at: i64,
    pub sent: bool,
}

impl Notification {
    pub fn to_user(
        user_id: i64,
        simulation_id: Option<i64>,
        subject: &str,
        body: &str,
        at: i64,
    ) -> Self {
        Notification {
            id: None,
            user_id: Some(user_id),
            simulation_id,
            audience: Audience::User,
            subject: subject.to_string(),
            body: body.to_string(),
            created_at: at,
            sent: false,
        }
    }

    pub fn to_admins(simulation_id: Option<i64>, subject: &str, body: &str, at: i64) -> Self {
        Notification {
            id: None,
            user_id: None,
            simulation_id,
            audience: Audience::Administrator,
            subject: subject.to_string(),
            body: body.to_string(),
            created_at: at,
            sent: false,
        }
    }
}

impl Model for Notification {
    const TABLE: &'static str = "notification";

    fn schema() -> TableSchema {
        TableSchema::new(
            Self::TABLE,
            vec![
                Column::new("user_id", ValueType::Int)
                    .references("amp_user", OnDelete::Cascade)
                    .indexed(),
                Column::new("simulation_id", ValueType::Int)
                    .references("simulation", OnDelete::SetNull)
                    .indexed(),
                Column::new("audience", ValueType::Text).not_null(),
                Column::new("subject", ValueType::Text)
                    .not_null()
                    .max_length(200),
                Column::new("body", ValueType::Text).not_null(),
                Column::new("created_at", ValueType::Int).not_null(),
                Column::new("sent", ValueType::Bool)
                    .not_null()
                    .default(false),
            ],
        )
    }

    fn from_row(id: i64, row: &Row) -> Result<Self, DbError> {
        Ok(Notification {
            id: Some(id),
            user_id: get_opt_int::<Self>(row, "user_id")?,
            simulation_id: get_opt_int::<Self>(row, "simulation_id")?,
            audience: get_text::<Self>(row, "audience")?
                .parse()
                .map_err(DbError::Schema)?,
            subject: get_text::<Self>(row, "subject")?,
            body: get_text::<Self>(row, "body")?,
            created_at: get_int::<Self>(row, "created_at")?,
            sent: get_bool::<Self>(row, "sent")?,
        })
    }

    fn to_values(&self) -> Vec<(&'static str, Value)> {
        vec![
            ("user_id", self.user_id.into()),
            ("simulation_id", self.simulation_id.into()),
            ("audience", self.audience.as_str().into()),
            ("subject", self.subject.clone().into()),
            ("body", self.body.clone().into()),
            ("created_at", self.created_at.into()),
            ("sent", self.sent.into()),
        ]
    }

    fn id(&self) -> Option<i64> {
        self.id
    }

    fn set_id(&mut self, id: i64) {
        self.id = Some(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_roundtrip() {
        for m in [
            NotifyMode::None,
            NotifyMode::OnCompletion,
            NotifyMode::EveryTransition,
        ] {
            assert_eq!(m.as_str().parse::<NotifyMode>().unwrap(), m);
        }
        assert!("weekly".parse::<NotifyMode>().is_err());
    }

    #[test]
    fn audience_roundtrip() {
        for a in [Audience::User, Audience::Administrator] {
            assert_eq!(a.as_str().parse::<Audience>().unwrap(), a);
        }
    }

    #[test]
    fn constructors() {
        let u = Notification::to_user(3, Some(7), "done", "body", 99);
        assert_eq!(u.audience, Audience::User);
        assert_eq!(u.user_id, Some(3));
        assert!(!u.sent);
        let a = Notification::to_admins(None, "transient", "gram down", 99);
        assert_eq!(a.audience, Audience::Administrator);
        assert_eq!(a.user_id, None);
    }
}
