//! Gateway user accounts.
//!
//! §4.1: AMP adopted Django's auth framework and "extended \[it] to support
//! additional information required by AMP and TeraGrid, such as data
//! provenance and user authentication metadata". `AmpUser` is that
//! extended account record. Passwords are stored hashed (the portal's auth
//! module does the hashing); accounts require administrator approval
//! before they may submit simulations.

use super::{get_bool, get_int, get_text};
use crate::models::notification::NotifyMode;
use amp_simdb::orm::Model;
use amp_simdb::{Column, DbError, Row, TableSchema, Value, ValueType};

/// A registered gateway user.
#[derive(Debug, Clone, PartialEq)]
pub struct AmpUser {
    pub id: Option<i64>,
    pub username: String,
    pub email: String,
    /// Salted hash, never the password itself.
    pub password_hash: String,
    /// Set by an administrator from the admin interface (§4.1).
    pub approved: bool,
    pub is_admin: bool,
    /// TeraGrid-required provenance: how/when the account was requested,
    /// which CAPTCHA question was answered.
    pub provenance: String,
    /// E-mail notification preference (§4.4).
    pub notify_mode: NotifyMode,
    /// Registration time (simulated clock, seconds).
    pub created_at: i64,
}

impl AmpUser {
    pub fn new(username: &str, email: &str, password_hash: &str, created_at: i64) -> Self {
        AmpUser {
            id: None,
            username: username.to_string(),
            email: email.to_string(),
            password_hash: password_hash.to_string(),
            approved: false,
            is_admin: false,
            provenance: String::new(),
            notify_mode: NotifyMode::OnCompletion,
            created_at,
        }
    }
}

impl Model for AmpUser {
    const TABLE: &'static str = "amp_user";

    fn schema() -> TableSchema {
        TableSchema::new(
            Self::TABLE,
            vec![
                Column::new("username", ValueType::Text)
                    .not_null()
                    .unique()
                    .max_length(64),
                Column::new("email", ValueType::Text)
                    .not_null()
                    .max_length(190),
                Column::new("password_hash", ValueType::Text)
                    .not_null()
                    .max_length(190),
                Column::new("approved", ValueType::Bool)
                    .not_null()
                    .default(false),
                Column::new("is_admin", ValueType::Bool)
                    .not_null()
                    .default(false),
                Column::new("provenance", ValueType::Text)
                    .not_null()
                    .default(""),
                Column::new("notify_mode", ValueType::Text)
                    .not_null()
                    .default(NotifyMode::OnCompletion.as_str()),
                Column::new("created_at", ValueType::Int)
                    .not_null()
                    .default(0),
            ],
        )
    }

    fn from_row(id: i64, row: &Row) -> Result<Self, DbError> {
        Ok(AmpUser {
            id: Some(id),
            username: get_text::<Self>(row, "username")?,
            email: get_text::<Self>(row, "email")?,
            password_hash: get_text::<Self>(row, "password_hash")?,
            approved: get_bool::<Self>(row, "approved")?,
            is_admin: get_bool::<Self>(row, "is_admin")?,
            provenance: get_text::<Self>(row, "provenance")?,
            notify_mode: get_text::<Self>(row, "notify_mode")?
                .parse()
                .map_err(DbError::Schema)?,
            created_at: get_int::<Self>(row, "created_at")?,
        })
    }

    fn to_values(&self) -> Vec<(&'static str, Value)> {
        vec![
            ("username", self.username.clone().into()),
            ("email", self.email.clone().into()),
            ("password_hash", self.password_hash.clone().into()),
            ("approved", self.approved.into()),
            ("is_admin", self.is_admin.into()),
            ("provenance", self.provenance.clone().into()),
            ("notify_mode", self.notify_mode.as_str().into()),
            ("created_at", self.created_at.into()),
        ]
    }

    fn id(&self) -> Option<i64> {
        self.id
    }

    fn set_id(&mut self, id: i64) {
        self.id = Some(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amp_simdb::orm::{Manager, Registry};
    use amp_simdb::{Db, PermSet, Query, Role};

    fn setup() -> Db {
        let db = Db::in_memory();
        db.define_role(Role::superuser("admin"));
        db.define_role(Role::new("web").grant(AmpUser::TABLE, PermSet::ALL));
        let admin = db.connect("admin").unwrap();
        Registry::new()
            .register::<AmpUser>()
            .migrate(&admin)
            .unwrap();
        db
    }

    #[test]
    fn create_and_reload() {
        let db = setup();
        let m = Manager::<AmpUser>::new(db.connect("web").unwrap());
        let mut u = AmpUser::new("astro1", "a@example.edu", "hash123", 1000);
        u.provenance = "captcha: Alpha Centauri".into();
        let id = m.create(&mut u).unwrap();
        let loaded = m.get(id).unwrap();
        assert_eq!(loaded, u);
        assert!(!loaded.approved);
    }

    #[test]
    fn username_unique() {
        let db = setup();
        let m = Manager::<AmpUser>::new(db.connect("web").unwrap());
        m.create(&mut AmpUser::new("astro1", "a@x.edu", "h", 0))
            .unwrap();
        assert!(m
            .create(&mut AmpUser::new("astro1", "b@x.edu", "h", 0))
            .is_err());
    }

    #[test]
    fn approval_flow() {
        let db = setup();
        let m = Manager::<AmpUser>::new(db.connect("web").unwrap());
        let mut u = AmpUser::new("astro1", "a@x.edu", "h", 0);
        m.create(&mut u).unwrap();
        u.approved = true;
        m.save(&u).unwrap();
        let pending = m.filter(&Query::new().eq("approved", false)).unwrap();
        assert!(pending.is_empty());
    }

    #[test]
    fn notify_mode_roundtrip() {
        let db = setup();
        let m = Manager::<AmpUser>::new(db.connect("web").unwrap());
        let mut u = AmpUser::new("astro1", "a@x.edu", "h", 0);
        u.notify_mode = NotifyMode::EveryTransition;
        m.create(&mut u).unwrap();
        assert_eq!(
            m.get(u.id.unwrap()).unwrap().notify_mode,
            NotifyMode::EveryTransition
        );
    }
}
