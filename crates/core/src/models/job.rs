//! Constituent grid job records.
//!
//! §4.4: "workflow state management and job status tracking are integrated
//! with AMP's data model ... maintaining constituent grid job status in a
//! more generic fashion". Each row tracks one GRAM job (pre-job, a GA
//! continuation, post-job, cleanup, or the solution evaluation) with the
//! submit/start/end times the §6 Gantt tool plots.

use super::{get_int, get_opt_ts, get_text, opt_ts};
use crate::status::{JobPurpose, JobStatus};
use amp_simdb::orm::Model;
use amp_simdb::{Column, DbError, OnDelete, Row, TableSchema, Value, ValueType};

/// One grid job belonging to a simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct GridJobRecord {
    pub id: Option<i64>,
    pub simulation_id: i64,
    /// Which GA run of the ensemble this job serves (0-based); -1 for jobs
    /// covering the whole simulation (pre/post/cleanup/solution).
    pub ga_run: i64,
    pub purpose: JobPurpose,
    /// 0-based continuation index within a GA run's job chain.
    pub continuation: i64,
    /// Owning science application (registry id). Part of the idempotent
    /// GRAM submit key so two apps' jobs can never collide.
    pub app: String,
    /// GRAM contact string once submitted.
    pub gram_handle: Option<String>,
    pub site: String,
    pub status: JobStatus,
    pub cores: i64,
    pub submitted_at: Option<i64>,
    pub started_at: Option<i64>,
    pub ended_at: Option<i64>,
    /// Failure detail / troubleshooting note (the daemon logs the exact
    /// command line equivalents, §4.4).
    pub detail: String,
}

impl GridJobRecord {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        simulation_id: i64,
        ga_run: i64,
        purpose: JobPurpose,
        continuation: i64,
        site: &str,
        cores: i64,
        app: &str,
    ) -> Self {
        GridJobRecord {
            id: None,
            simulation_id,
            ga_run,
            purpose,
            continuation,
            app: app.to_string(),
            gram_handle: None,
            site: site.to_string(),
            status: JobStatus::Unsubmitted,
            cores,
            submitted_at: None,
            started_at: None,
            ended_at: None,
            detail: String::new(),
        }
    }

    /// Queue wait, once started.
    pub fn wait_secs(&self) -> Option<i64> {
        match (self.submitted_at, self.started_at) {
            (Some(s), Some(t)) => Some((t - s).max(0)),
            _ => None,
        }
    }

    /// Execution time, once ended.
    pub fn run_secs(&self) -> Option<i64> {
        match (self.started_at, self.ended_at) {
            (Some(s), Some(e)) => Some((e - s).max(0)),
            _ => None,
        }
    }
}

impl Model for GridJobRecord {
    const TABLE: &'static str = "grid_job";

    fn schema() -> TableSchema {
        TableSchema::new(
            Self::TABLE,
            vec![
                Column::new("simulation_id", ValueType::Int)
                    .not_null()
                    .references("simulation", OnDelete::Cascade)
                    .indexed(),
                Column::new("ga_run", ValueType::Int).not_null().default(-1),
                Column::new("purpose", ValueType::Text).not_null(),
                Column::new("continuation", ValueType::Int)
                    .not_null()
                    .default(0),
                Column::new("app", ValueType::Text)
                    .not_null()
                    .default("stellar")
                    .indexed(),
                Column::new("gram_handle", ValueType::Text).max_length(200),
                Column::new("site", ValueType::Text)
                    .not_null()
                    .max_length(32),
                Column::new("status", ValueType::Text).not_null().indexed(),
                Column::new("cores", ValueType::Int).not_null().default(1),
                Column::new("submitted_at", ValueType::Timestamp),
                Column::new("started_at", ValueType::Timestamp),
                Column::new("ended_at", ValueType::Timestamp),
                Column::new("detail", ValueType::Text)
                    .not_null()
                    .default(""),
            ],
        )
    }

    fn from_row(id: i64, row: &Row) -> Result<Self, DbError> {
        Ok(GridJobRecord {
            id: Some(id),
            simulation_id: get_int::<Self>(row, "simulation_id")?,
            ga_run: get_int::<Self>(row, "ga_run")?,
            purpose: get_text::<Self>(row, "purpose")?
                .parse()
                .map_err(DbError::Schema)?,
            continuation: get_int::<Self>(row, "continuation")?,
            app: get_text::<Self>(row, "app")?,
            gram_handle: super::get_opt_text::<Self>(row, "gram_handle")?,
            site: get_text::<Self>(row, "site")?,
            status: get_text::<Self>(row, "status")?
                .parse()
                .map_err(DbError::Schema)?,
            cores: get_int::<Self>(row, "cores")?,
            submitted_at: get_opt_ts::<Self>(row, "submitted_at")?,
            started_at: get_opt_ts::<Self>(row, "started_at")?,
            ended_at: get_opt_ts::<Self>(row, "ended_at")?,
            detail: get_text::<Self>(row, "detail")?,
        })
    }

    fn to_values(&self) -> Vec<(&'static str, Value)> {
        vec![
            ("simulation_id", self.simulation_id.into()),
            ("ga_run", self.ga_run.into()),
            ("purpose", self.purpose.as_str().into()),
            ("continuation", self.continuation.into()),
            ("app", self.app.clone().into()),
            ("gram_handle", self.gram_handle.clone().into()),
            ("site", self.site.clone().into()),
            ("status", self.status.as_str().into()),
            ("cores", self.cores.into()),
            ("submitted_at", opt_ts(self.submitted_at)),
            ("started_at", opt_ts(self.started_at)),
            ("ended_at", opt_ts(self.ended_at)),
            ("detail", self.detail.clone().into()),
        ]
    }

    fn id(&self) -> Option<i64> {
        self.id
    }

    fn set_id(&mut self, id: i64) {
        self.id = Some(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_record_defaults() {
        let j = GridJobRecord::new(1, 0, JobPurpose::Work, 2, "kraken", 128, "stellar");
        assert_eq!(j.status, JobStatus::Unsubmitted);
        assert_eq!(j.continuation, 2);
        assert_eq!(j.app, "stellar");
        assert!(j.gram_handle.is_none());
        assert_eq!(j.wait_secs(), None);
        assert_eq!(j.run_secs(), None);
    }

    #[test]
    fn timing_accessors() {
        let mut j = GridJobRecord::new(1, -1, JobPurpose::PreJob, 0, "kraken", 0, "stellar");
        j.submitted_at = Some(100);
        j.started_at = Some(400);
        j.ended_at = Some(1000);
        assert_eq!(j.wait_secs(), Some(300));
        assert_eq!(j.run_secs(), Some(600));
    }
}
