//! The canonical database roles of the AMP architecture (Figure 2).
//!
//! §3: "the roles and privileges of the public web portal and GridAMP
//! daemon are strictly managed and controlled." The public web server is
//! "essentially a database-driven web server without any Grid connectivity"
//! — it may create users, stars, observations, and simulation *requests*,
//! and read statuses, but may not touch grid-job bookkeeping or
//! allocations. The daemon owns workflow execution but has no business
//! editing user accounts. Only `admin` (never on a public host, §4.1) can
//! do everything.

use crate::models::{
    Allocation, AmpUser, GridJobRecord, Lease, Notification, Observation, Simulation,
    SystemAuthorization,
};
use amp_simdb::orm::Model as _;
use amp_simdb::{PermSet, Role};

/// Role name constants.
pub const ROLE_WEB: &str = "web";
pub const ROLE_DAEMON: &str = "daemon";
pub const ROLE_ADMIN: &str = "admin";

/// The public portal's grants.
pub fn web_role() -> Role {
    Role::new(ROLE_WEB)
        // account self-service: register + profile edits
        .grant(
            AmpUser::TABLE,
            PermSet {
                select: true,
                insert: true,
                update: true,
                delete: false,
            },
        )
        // catalog browse/import (SIMBAD fall-through inserts rows)
        .grant(
            Star::TABLE,
            PermSet {
                select: true,
                insert: true,
                update: true,
                delete: false,
            },
        )
        .grant(
            Observation::TABLE,
            PermSet {
                select: true,
                insert: true,
                update: false,
                delete: false,
            },
        )
        // simulation submission + status display; never deletes
        .grant(
            Simulation::TABLE,
            PermSet {
                select: true,
                insert: true,
                update: false,
                delete: false,
            },
        )
        // read-only visibility of job progress for the results pages
        .grant(GridJobRecord::TABLE, PermSet::READ_ONLY)
        // sees which allocations exist to offer system choices
        .grant(Allocation::TABLE, PermSet::READ_ONLY)
        .grant(SystemAuthorization::TABLE, PermSet::READ_ONLY)
        // enqueues nothing itself; reads its own notification history
        .grant(Notification::TABLE, PermSet::READ_ONLY)
        // status pages may show which daemon owns a simulation
        .grant(Lease::TABLE, PermSet::READ_ONLY)
}

/// The GridAMP daemon's grants.
pub fn daemon_role() -> Role {
    Role::new(ROLE_DAEMON)
        // reads users for notification targeting only
        .grant(AmpUser::TABLE, PermSet::READ_ONLY)
        .grant(
            Star::TABLE,
            PermSet {
                select: true,
                insert: false,
                update: true, // sets has_results
                delete: false,
            },
        )
        .grant(Observation::TABLE, PermSet::READ_ONLY)
        .grant(
            Simulation::TABLE,
            PermSet {
                select: true,
                insert: false,
                update: true, // drives the workflow states
                delete: false,
            },
        )
        .grant(GridJobRecord::TABLE, PermSet::ALL)
        .grant(
            Allocation::TABLE,
            PermSet {
                select: true,
                insert: false,
                update: true, // SU accounting
                delete: false,
            },
        )
        .grant(SystemAuthorization::TABLE, PermSet::READ_ONLY)
        .grant(
            Notification::TABLE,
            PermSet {
                select: true,
                insert: true, // writes the outbox
                update: true, // marks sent
                delete: false,
            },
        )
        // claim/renew/takeover/release of simulation ownership
        .grant(Lease::TABLE, PermSet::ALL)
}

/// The administrator/migration role.
pub fn admin_role() -> Role {
    Role::superuser(ROLE_ADMIN)
}

use crate::models::star::Star;

#[cfg(test)]
mod tests {
    use super::*;
    use amp_simdb::Action;

    #[test]
    fn web_cannot_touch_grid_state() {
        let web = web_role();
        assert!(web.check(GridJobRecord::TABLE, Action::Insert).is_err());
        assert!(web.check(GridJobRecord::TABLE, Action::Update).is_err());
        assert!(web.check(Allocation::TABLE, Action::Update).is_err());
        assert!(web.check(Simulation::TABLE, Action::Update).is_err());
        assert!(web.check(Simulation::TABLE, Action::Delete).is_err());
    }

    #[test]
    fn web_can_do_its_job() {
        let web = web_role();
        assert!(web.check(AmpUser::TABLE, Action::Insert).is_ok());
        assert!(web.check(Simulation::TABLE, Action::Insert).is_ok());
        assert!(web.check(Simulation::TABLE, Action::Select).is_ok());
        assert!(web.check(Observation::TABLE, Action::Insert).is_ok());
        assert!(web.check(Star::TABLE, Action::Insert).is_ok());
    }

    #[test]
    fn daemon_cannot_edit_accounts_or_requests() {
        let d = daemon_role();
        assert!(d.check(AmpUser::TABLE, Action::Insert).is_err());
        assert!(d.check(AmpUser::TABLE, Action::Update).is_err());
        assert!(d.check(Simulation::TABLE, Action::Insert).is_err());
        assert!(d.check(Observation::TABLE, Action::Insert).is_err());
    }

    #[test]
    fn daemon_drives_workflow() {
        let d = daemon_role();
        assert!(d.check(Simulation::TABLE, Action::Update).is_ok());
        assert!(d.check(GridJobRecord::TABLE, Action::Insert).is_ok());
        assert!(d.check(GridJobRecord::TABLE, Action::Update).is_ok());
        assert!(d.check(Allocation::TABLE, Action::Update).is_ok());
        assert!(d.check(Notification::TABLE, Action::Insert).is_ok());
    }

    #[test]
    fn lease_table_is_daemon_territory() {
        let d = daemon_role();
        for action in [
            Action::Select,
            Action::Insert,
            Action::Update,
            Action::Delete,
        ] {
            assert!(d.check(Lease::TABLE, action).is_ok());
        }
        let web = web_role();
        assert!(web.check(Lease::TABLE, Action::Select).is_ok());
        assert!(web.check(Lease::TABLE, Action::Insert).is_err());
        assert!(web.check(Lease::TABLE, Action::Update).is_err());
        assert!(web.check(Lease::TABLE, Action::Delete).is_err());
    }

    #[test]
    fn nobody_but_admin_touches_unknown_tables() {
        for role in [web_role(), daemon_role()] {
            assert!(role.check("django_secrets", Action::Select).is_err());
        }
        assert!(admin_role().check("django_secrets", Action::Select).is_ok());
    }
}
