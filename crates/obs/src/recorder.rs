//! The flight recorder: a bounded ring buffer of structured events.
//!
//! Metrics tell you *how much*; the flight recorder tells you *what just
//! happened*. Producers append cheap structured events (a daemon state
//! transition, a grid fault, a retry) and the buffer keeps only the most
//! recent N, so a long-running healthy process pays a fixed memory cost
//! and a crash dump always shows the moments leading up to the failure —
//! the same troubleshooting role the paper's Globus-CLI transparency log
//! played (§4.4).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One recorded event.
#[derive(Debug, Clone)]
pub struct FlightEvent {
    /// Monotone sequence number (never reset; survives ring eviction, so
    /// gaps reveal how much history was dropped).
    pub seq: u64,
    /// Coarse event class, e.g. `"transition"`, `"transient"`, `"hold"`.
    pub category: &'static str,
    /// Human-readable payload, formatted by the producer.
    pub detail: String,
}

/// Bounded ring buffer of [`FlightEvent`]s. Recording takes a short
/// mutex (append + possible pop); the buffer never grows past `capacity`.
pub struct FlightRecorder {
    capacity: usize,
    next_seq: AtomicU64,
    ring: Mutex<VecDeque<FlightEvent>>,
}

impl FlightRecorder {
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            next_seq: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append an event, evicting the oldest if the ring is full.
    pub fn record(&self, category: &'static str, detail: impl Into<String>) {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let event = FlightEvent {
            seq,
            category,
            detail: detail.into(),
        };
        let mut ring = self.ring.lock().expect("flight recorder lock");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    /// Total events ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed)
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        self.ring
            .lock()
            .expect("flight recorder lock")
            .iter()
            .cloned()
            .collect()
    }

    pub fn len(&self) -> usize {
        self.ring.lock().expect("flight recorder lock").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn clear(&self) {
        self.ring.lock().expect("flight recorder lock").clear();
    }

    /// Render the buffer as a human-readable dump (one event per line,
    /// oldest first) — what gets printed on failure.
    pub fn render(&self) -> String {
        let events = self.events();
        let mut out = String::with_capacity(64 * events.len() + 64);
        out.push_str(&format!(
            "flight recorder: {} of {} events retained (capacity {})\n",
            events.len(),
            self.recorded(),
            self.capacity
        ));
        for e in &events {
            out.push_str(&format!(
                "  [{:>6}] {:<12} {}\n",
                e.seq, e.category, e.detail
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_only_last_n_in_order() {
        let rec = FlightRecorder::new(4);
        for i in 0..10 {
            rec.record("tick", format!("event {i}"));
        }
        let events = rec.events();
        assert_eq!(events.len(), 4);
        assert_eq!(rec.recorded(), 10);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(events[3].detail, "event 9");
    }

    #[test]
    fn render_mentions_retention() {
        let rec = FlightRecorder::new(2);
        rec.record("a", "first");
        rec.record("b", "second");
        rec.record("c", "third");
        let dump = rec.render();
        assert!(
            dump.contains("2 of 3 events retained (capacity 2)"),
            "{dump}"
        );
        assert!(!dump.contains("first"), "{dump}");
        assert!(dump.contains("second") && dump.contains("third"), "{dump}");
    }

    #[test]
    fn concurrent_recording_is_bounded() {
        let rec = FlightRecorder::new(16);
        std::thread::scope(|s| {
            for t in 0..4 {
                let rec = &rec;
                s.spawn(move || {
                    for i in 0..100 {
                        rec.record("load", format!("t{t} i{i}"));
                    }
                });
            }
        });
        assert_eq!(rec.recorded(), 400);
        assert_eq!(rec.len(), 16);
    }
}
