//! Observability substrate for the AMP stack.
//!
//! The paper's operational story (§4.4) is that AMP works because its
//! operators can *see* what the daemon and the grid are doing — the
//! Globus-CLI transparency log existed purely for troubleshooting. This
//! crate is the reproduction's equivalent, shaped like a modern serving
//! stack's instrumentation layer:
//!
//! * a [`Registry`] of lock-free metrics — [`Counter`]s, [`Gauge`]s and
//!   fixed-bucket [`Histogram`]s with p50/p99 extraction — where the hot
//!   path is a single relaxed atomic op on a cached handle (registration
//!   takes a lock once; observation never does);
//! * a bounded ring-buffer [`FlightRecorder`] of structured events (the
//!   last N daemon state transitions, grid faults, retries, lease
//!   takeovers and fence rejections) that can be dumped when something
//!   goes wrong;
//! * Prometheus text exposition ([`Registry::render_prometheus`]) so the
//!   portal can serve `GET /metrics`.
//!
//! The crate sits at the very bottom of the workspace graph (std only, no
//! dependencies) so every tier — simdb, the gridamp daemon, the GA, the
//! portal — can report into one process-wide registry ([`registry()`],
//! [`flight()`]).

mod metrics;
mod recorder;

pub use metrics::{
    count_buckets, latency_buckets, Counter, Gauge, Histogram, HistogramSnapshot, Registry, Unit,
};
pub use recorder::{FlightEvent, FlightRecorder};

use std::sync::OnceLock;

/// Default capacity of the global flight recorder.
pub const FLIGHT_CAPACITY: usize = 256;

static REGISTRY: OnceLock<Registry> = OnceLock::new();
static FLIGHT: OnceLock<FlightRecorder> = OnceLock::new();

/// The process-wide metrics registry. Instantiated lazily; a process that
/// never records a metric never allocates one.
pub fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::new)
}

/// The process-wide flight recorder (capacity [`FLIGHT_CAPACITY`]).
pub fn flight() -> &'static FlightRecorder {
    FLIGHT.get_or_init(|| FlightRecorder::new(FLIGHT_CAPACITY))
}

/// Register (or look up) a counter in the global registry.
///
/// Counter names are dotted/underscored Prometheus-style strings chosen
/// by the producer. The multi-daemon control plane, for instance, reports
/// its lease protocol through `daemon_lease_claims_total`,
/// `daemon_lease_renewals_total`, `daemon_lease_takeovers_total`,
/// `daemon_lease_losses_total` and `daemon_lease_fences_total` (the last
/// counting submissions refused because the caller's fencing epoch was
/// stale).
pub fn counter(name: &str) -> Counter {
    registry().counter(name)
}

/// Register (or look up) a gauge in the global registry.
pub fn gauge(name: &str) -> Gauge {
    registry().gauge(name)
}

/// Register (or look up) a latency histogram (nanosecond observations,
/// rendered as seconds) in the global registry.
pub fn histogram(name: &str) -> Histogram {
    registry().histogram(name, Unit::Seconds)
}

/// Render every global metric in Prometheus text exposition format.
pub fn render_prometheus() -> String {
    registry().render_prometheus()
}

/// Build a `name{k="v",...}` metric key. Label values are escaped per the
/// Prometheus text format (`\\`, `\"`, `\n`).
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labeled_builds_prometheus_keys() {
        assert_eq!(labeled("m", &[]), "m{}");
        assert_eq!(
            labeled(
                "portal_requests_total",
                &[("route", "/stars"), ("status", "200")]
            ),
            "portal_requests_total{route=\"/stars\",status=\"200\"}"
        );
        assert_eq!(
            labeled("m", &[("k", "a\"b\\c\nd")]),
            "m{k=\"a\\\"b\\\\c\\nd\"}"
        );
    }

    #[test]
    fn global_registry_and_flight_are_singletons() {
        let c = counter("obs_test_global_total");
        c.inc();
        let again = counter("obs_test_global_total");
        assert!(again.get() >= 1);
        flight().record("test", "global flight recorder works");
        assert!(flight().events().iter().any(|e| e.category == "test"));
    }
}
