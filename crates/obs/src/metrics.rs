//! Lock-free metric primitives and the registry that names them.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`s over plain
//! atomics: clone them out of the registry once (call sites cache them in
//! `OnceLock` statics) and every subsequent observation is a relaxed
//! atomic op — no lock, no allocation, no syscall. The registry itself is
//! an `RwLock<BTreeMap>` touched only at registration and render time.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn sub(&self, n: i64) {
        self.cell.fetch_sub(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// What a histogram's raw `u64` observations mean — controls how bucket
/// bounds and sums are rendered in the Prometheus exposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Observations are nanoseconds; rendered as fractional seconds.
    Seconds,
    /// Observations are plain counts (batch sizes, queue lengths).
    Count,
}

/// Default latency buckets: 1 µs to 10 s, roughly 1-2.5-5 per decade
/// (values in nanoseconds).
pub fn latency_buckets() -> Vec<u64> {
    let mut out = Vec::with_capacity(22);
    let mut decade: u64 = 1_000;
    while decade <= 1_000_000_000 {
        out.push(decade);
        out.push(decade.saturating_mul(25) / 10);
        out.push(decade * 5);
        decade *= 10;
    }
    out.push(10_000_000_000);
    out
}

/// Default count buckets: powers of two from 1 to 4096.
pub fn count_buckets() -> Vec<u64> {
    (0..13).map(|i| 1u64 << i).collect()
}

struct HistogramCore {
    unit: Unit,
    /// Upper bounds (inclusive) of the finite buckets, ascending.
    bounds: Vec<u64>,
    /// One slot per finite bound plus a final overflow (+Inf) slot.
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
}

/// A fixed-bucket histogram. Observation is lock-free: a binary search
/// over the (immutable) bounds plus two relaxed atomic adds.
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    pub fn new(unit: Unit, bounds: Vec<u64>) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        let buckets = (0..bounds.len() + 1)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Histogram {
            core: Arc::new(HistogramCore {
                unit,
                bounds,
                buckets,
                sum: AtomicU64::new(0),
            }),
        }
    }

    pub fn unit(&self) -> Unit {
        self.core.unit
    }

    /// Record one observation (nanoseconds for [`Unit::Seconds`]).
    #[inline]
    pub fn observe(&self, v: u64) {
        let idx = self.core.bounds.partition_point(|&b| b < v);
        self.core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.core.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Record a wall-clock duration (stored as nanoseconds).
    #[inline]
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .core
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            unit: self.core.unit,
            bounds: self.core.bounds.clone(),
            sum: self.core.sum.load(Ordering::Relaxed),
            count: counts.iter().sum(),
            counts,
        }
    }

    pub fn count(&self) -> u64 {
        self.snapshot().count
    }

    /// Approximate quantile (same units as observations).
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// Point-in-time histogram state with quantile extraction.
pub struct HistogramSnapshot {
    pub unit: Unit,
    pub bounds: Vec<u64>,
    pub counts: Vec<u64>,
    pub sum: u64,
    pub count: u64,
}

impl HistogramSnapshot {
    /// Approximate quantile by linear interpolation inside the bucket
    /// holding the target rank. Observations above the last finite bound
    /// saturate to that bound.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let prev = cum;
            cum += c;
            if cum >= target {
                let upper = match self.bounds.get(i) {
                    Some(&b) => b,
                    None => return *self.bounds.last().expect("non-empty bounds"),
                };
                let lower = if i == 0 { 0 } else { self.bounds[i - 1] };
                let frac = (target - prev) as f64 / c as f64;
                return lower + ((upper - lower) as f64 * frac) as u64;
            }
        }
        *self.bounds.last().expect("non-empty bounds")
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A named collection of metrics. Keys may carry Prometheus-style labels
/// (`name{k="v"}`, see [`crate::labeled`]); everything before the first
/// `{` is the metric family used for `# TYPE` lines.
#[derive(Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create the counter registered under `name`.
    ///
    /// Panics if `name` is already registered as a different metric kind
    /// (a programming error, not a runtime condition).
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(Metric::Counter(c)) = self.lookup(name) {
            return c;
        }
        let mut metrics = self.metrics.write().expect("registry lock");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Get or create the gauge registered under `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(Metric::Gauge(g)) = self.lookup(name) {
            return g;
        }
        let mut metrics = self.metrics.write().expect("registry lock");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Get or create a histogram with the default buckets for `unit`.
    pub fn histogram(&self, name: &str, unit: Unit) -> Histogram {
        let bounds = match unit {
            Unit::Seconds => latency_buckets(),
            Unit::Count => count_buckets(),
        };
        self.histogram_with(name, unit, bounds)
    }

    /// Get or create a histogram with explicit bucket bounds. If `name`
    /// already exists, the existing histogram wins (its bounds are fixed
    /// at first registration).
    pub fn histogram_with(&self, name: &str, unit: Unit, bounds: Vec<u64>) -> Histogram {
        if let Some(Metric::Histogram(h)) = self.lookup(name) {
            return h;
        }
        let mut metrics = self.metrics.write().expect("registry lock");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new(unit, bounds)))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    fn lookup(&self, name: &str) -> Option<Metric> {
        let metrics = self.metrics.read().expect("registry lock");
        metrics.get(name).map(|m| match m {
            Metric::Counter(c) => Metric::Counter(c.clone()),
            Metric::Gauge(g) => Metric::Gauge(g.clone()),
            Metric::Histogram(h) => Metric::Histogram(h.clone()),
        })
    }

    /// Number of registered metrics (labelled series count separately).
    pub fn len(&self) -> usize {
        self.metrics.read().expect("registry lock").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render every metric in the Prometheus text exposition format
    /// (version 0.0.4): `# TYPE` per family, counters/gauges as single
    /// samples, histograms as cumulative `_bucket`/`_sum`/`_count` series.
    pub fn render_prometheus(&self) -> String {
        let metrics = self.metrics.read().expect("registry lock");
        let mut out = String::with_capacity(64 * metrics.len().max(1));
        let mut last_family = String::new();
        for (key, metric) in metrics.iter() {
            let (family, labels) = split_key(key);
            if family != last_family {
                out.push_str("# TYPE ");
                out.push_str(family);
                out.push(' ');
                out.push_str(metric.kind());
                out.push('\n');
                last_family = family.to_string();
            }
            match metric {
                Metric::Counter(c) => {
                    render_sample(&mut out, family, labels, None, &c.get().to_string());
                }
                Metric::Gauge(g) => {
                    render_sample(&mut out, family, labels, None, &g.get().to_string());
                }
                Metric::Histogram(h) => render_histogram(&mut out, family, labels, &h.snapshot()),
            }
        }
        out
    }
}

/// Split `name{labels}` into (`name`, `Some("labels")`).
fn split_key(key: &str) -> (&str, Option<&str>) {
    match key.split_once('{') {
        Some((family, rest)) => (family, Some(rest.trim_end_matches('}'))),
        None => (key, None),
    }
}

/// Write one sample line, merging base labels with an optional `le`.
fn render_sample(
    out: &mut String,
    name: &str,
    labels: Option<&str>,
    le: Option<&str>,
    value: &str,
) {
    out.push_str(name);
    match (labels.filter(|l| !l.is_empty()), le) {
        (None, None) => {}
        (Some(l), None) => {
            out.push('{');
            out.push_str(l);
            out.push('}');
        }
        (None, Some(le)) => {
            out.push_str("{le=\"");
            out.push_str(le);
            out.push_str("\"}");
        }
        (Some(l), Some(le)) => {
            out.push('{');
            out.push_str(l);
            out.push_str(",le=\"");
            out.push_str(le);
            out.push_str("\"}");
        }
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

fn render_histogram(
    out: &mut String,
    family: &str,
    labels: Option<&str>,
    snap: &HistogramSnapshot,
) {
    let bucket = format!("{family}_bucket");
    let mut cum = 0u64;
    for (i, &bound) in snap.bounds.iter().enumerate() {
        cum += snap.counts[i];
        let le = match snap.unit {
            Unit::Seconds => format_seconds(bound),
            Unit::Count => bound.to_string(),
        };
        render_sample(out, &bucket, labels, Some(&le), &cum.to_string());
    }
    cum += snap.counts[snap.bounds.len()];
    render_sample(out, &bucket, labels, Some("+Inf"), &cum.to_string());
    let sum = match snap.unit {
        Unit::Seconds => format_seconds(snap.sum),
        Unit::Count => snap.sum.to_string(),
    };
    render_sample(out, &format!("{family}_sum"), labels, None, &sum);
    render_sample(
        out,
        &format!("{family}_count"),
        labels,
        None,
        &snap.count.to_string(),
    );
}

/// Render a nanosecond value as seconds without trailing zero noise.
fn format_seconds(ns: u64) -> String {
    let secs = ns as f64 / 1e9;
    let s = format!("{secs:.9}");
    let trimmed = s.trim_end_matches('0').trim_end_matches('.');
    if trimmed.is_empty() {
        "0".to_string()
    } else {
        trimmed.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::new();
        let c = r.counter("c_total");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("c_total").get(), 5);
        let g = r.gauge("g");
        g.set(7);
        g.sub(2);
        g.add(10);
        assert_eq!(r.gauge("g").get(), 15);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("m");
        r.gauge("m");
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new(Unit::Count, vec![1, 2, 4, 8, 16]);
        for v in [1, 1, 2, 3, 5, 9, 100] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 7);
        assert_eq!(snap.sum, 121);
        // buckets: le=1 -> 2, le=2 -> 1, le=4 -> 1, le=8 -> 1, le=16 -> 1, +Inf -> 1
        assert_eq!(snap.counts, vec![2, 1, 1, 1, 1, 1]);
        assert!(
            h.p50() <= 4,
            "p50 {} should sit in the le=4 bucket",
            h.p50()
        );
        // p99 lands in the overflow bucket -> saturates to the last bound
        assert_eq!(h.p99(), 16);
        assert_eq!(Histogram::new(Unit::Count, vec![1]).quantile(0.5), 0);
    }

    #[test]
    fn latency_quantiles_are_sane() {
        let h = Histogram::new(Unit::Seconds, latency_buckets());
        for _ in 0..90 {
            h.observe(10_000); // 10 us
        }
        for _ in 0..10 {
            h.observe(5_000_000); // 5 ms
        }
        let p50 = h.p50();
        assert!((2_500..=10_000).contains(&p50), "p50 {p50}");
        let p99 = h.p99();
        assert!((1_000_000..=5_000_000).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn concurrent_observation() {
        let r = Registry::new();
        let c = r.counter("threads_total");
        let h = r.histogram_with("lat", Unit::Count, vec![8, 64]);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.observe(i % 100);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        assert_eq!(h.count(), 8000);
    }

    #[test]
    fn prometheus_rendering() {
        let r = Registry::new();
        r.counter(&crate::labeled(
            "req_total",
            &[("route", "/stars"), ("status", "200")],
        ))
        .add(3);
        r.counter(&crate::labeled(
            "req_total",
            &[("route", "/"), ("status", "200")],
        ))
        .inc();
        r.gauge("queue_depth").set(2);
        let h = r.histogram_with("lat_seconds", Unit::Seconds, vec![1_000, 1_000_000]);
        h.observe(500);
        h.observe(2_000_000);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE req_total counter\n"), "{text}");
        assert!(
            text.contains("req_total{route=\"/stars\",status=\"200\"} 3\n"),
            "{text}"
        );
        assert!(
            text.contains("req_total{route=\"/\",status=\"200\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE queue_depth gauge\nqueue_depth 2\n"),
            "{text}"
        );
        assert!(text.contains("# TYPE lat_seconds histogram\n"), "{text}");
        assert!(
            text.contains("lat_seconds_bucket{le=\"0.000001\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("lat_seconds_bucket{le=\"0.001\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("lat_seconds_bucket{le=\"+Inf\"} 2\n"),
            "{text}"
        );
        assert!(text.contains("lat_seconds_count 2\n"), "{text}");
        // the TYPE line appears once per family even with two series
        assert_eq!(text.matches("# TYPE req_total").count(), 1);
    }

    #[test]
    fn count_histogram_renders_integer_bounds() {
        let r = Registry::new();
        let h = r.histogram_with("batch", Unit::Count, vec![1, 4]);
        h.observe(3);
        let text = r.render_prometheus();
        assert!(text.contains("batch_bucket{le=\"1\"} 0\n"), "{text}");
        assert!(text.contains("batch_bucket{le=\"4\"} 1\n"), "{text}");
        assert!(text.contains("batch_sum 3\n"), "{text}");
    }
}
