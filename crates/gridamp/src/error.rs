//! The GridAMP failure taxonomy.
//!
//! §4.4: "The GridAMP daemon distinguishes between anticipated transients,
//! model processing failures, and its own failures." Transients retry
//! silently (admins notified, users never); model failures park the
//! simulation in the hold state and notify both; daemon failures surface
//! to the external monitor.

use amp_grid::GridError;
use amp_simdb::DbError;
use std::fmt;

/// A workflow stage's failure.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkflowError {
    /// Anticipated transient: retried automatically next tick.
    Transient(String),
    /// Model processing failure: simulation goes to HOLD, user and
    /// administrator are notified.
    ModelFailure(String),
    /// A daemon-side defect (DB inconsistency, impossible state): surfaces
    /// to the external monitor.
    Daemon(String),
}

impl WorkflowError {
    /// Classify a grid client error per the taxonomy.
    pub fn from_grid(e: GridError) -> Self {
        if e.is_transient() {
            WorkflowError::Transient(e.to_string())
        } else {
            // Bad job specs / missing executables are deployment problems
            // an administrator must resolve: model-failure class.
            WorkflowError::ModelFailure(e.to_string())
        }
    }
}

impl From<GridError> for WorkflowError {
    fn from(e: GridError) -> Self {
        WorkflowError::from_grid(e)
    }
}

impl From<DbError> for WorkflowError {
    fn from(e: DbError) -> Self {
        // The DB is daemon-local infrastructure; failures there are the
        // daemon's own class.
        WorkflowError::Daemon(e.to_string())
    }
}

impl fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkflowError::Transient(m) => write!(f, "transient: {m}"),
            WorkflowError::ModelFailure(m) => write!(f, "model failure: {m}"),
            WorkflowError::Daemon(m) => write!(f, "daemon failure: {m}"),
        }
    }
}

impl std::error::Error for WorkflowError {}

#[cfg(test)]
mod tests {
    use super::*;
    use amp_grid::SimTime;

    #[test]
    fn grid_errors_classified() {
        let t = WorkflowError::from_grid(GridError::ServiceUnreachable {
            site: "kraken".into(),
            service: "GRAM",
            at: SimTime(0),
        });
        assert!(matches!(t, WorkflowError::Transient(_)));
        let m = WorkflowError::from_grid(GridError::BadJobSpec("x".into()));
        assert!(matches!(m, WorkflowError::ModelFailure(_)));
    }

    #[test]
    fn db_errors_are_daemon_class() {
        let e: WorkflowError = DbError::NoSuchTable("x".into()).into();
        assert!(matches!(e, WorkflowError::Daemon(_)));
    }
}
