//! The §6 Gantt tool: "a graphical tool that plots job wait vs. execution
//! time on a Gantt chart for each AMP simulation, as well as calculating
//! aggregate execution wait and run time statistics, in order to
//! understand the impact of queue wait time on various systems."

use amp_core::models::{GridJobRecord, Simulation};
use amp_simdb::orm::Manager;
use amp_simdb::{Connection, DbError, Query};

/// One bar of the chart.
#[derive(Debug, Clone, PartialEq)]
pub struct GanttRow {
    pub label: String,
    pub cores: i64,
    pub submitted_at: i64,
    pub started_at: Option<i64>,
    pub ended_at: Option<i64>,
}

impl GanttRow {
    pub fn wait_secs(&self) -> Option<i64> {
        self.started_at.map(|s| (s - self.submitted_at).max(0))
    }

    pub fn run_secs(&self) -> Option<i64> {
        match (self.started_at, self.ended_at) {
            (Some(s), Some(e)) => Some((e - s).max(0)),
            _ => None,
        }
    }
}

/// The chart for one simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct GanttChart {
    pub simulation_id: i64,
    pub system: String,
    pub rows: Vec<GanttRow>,
}

/// Aggregate wait/run statistics over a set of rows.
#[derive(Debug, Clone, PartialEq)]
pub struct WaitRunStats {
    pub jobs: usize,
    pub mean_wait_secs: f64,
    pub median_wait_secs: f64,
    pub max_wait_secs: i64,
    pub mean_run_secs: f64,
    /// Total wait / total run — the §6 "impact of queue wait" headline.
    pub wait_to_run_ratio: f64,
}

/// Build the chart for a simulation from its grid-job records.
pub fn chart_for(conn: &Connection, simulation_id: i64) -> Result<GanttChart, DbError> {
    let sims = Manager::<Simulation>::new(conn.clone());
    let sim = sims.get(simulation_id)?;
    let jobs = Manager::<GridJobRecord>::new(conn.clone()).filter(
        &Query::new()
            .eq("simulation_id", simulation_id)
            .order_by("submitted_at"),
    )?;
    let rows = jobs
        .into_iter()
        .filter(|j| j.submitted_at.is_some())
        .map(|j| GanttRow {
            label: format!(
                "{}{}",
                j.purpose.as_str().to_lowercase(),
                if j.ga_run >= 0 {
                    format!("-r{}c{}", j.ga_run, j.continuation)
                } else {
                    String::new()
                }
            ),
            cores: j.cores,
            submitted_at: j.submitted_at.unwrap_or_default(),
            started_at: j.started_at,
            ended_at: j.ended_at,
        })
        .collect();
    Ok(GanttChart {
        simulation_id,
        system: sim.system,
        rows,
    })
}

/// Aggregate statistics over completed rows.
pub fn stats(rows: &[GanttRow]) -> WaitRunStats {
    let mut waits: Vec<i64> = rows.iter().filter_map(|r| r.wait_secs()).collect();
    let runs: Vec<i64> = rows.iter().filter_map(|r| r.run_secs()).collect();
    waits.sort_unstable();
    let jobs = waits.len();
    let total_wait: i64 = waits.iter().sum();
    let total_run: i64 = runs.iter().sum();
    WaitRunStats {
        jobs,
        mean_wait_secs: if jobs == 0 {
            0.0
        } else {
            total_wait as f64 / jobs as f64
        },
        median_wait_secs: if jobs == 0 {
            0.0
        } else {
            waits[jobs / 2] as f64
        },
        max_wait_secs: waits.last().copied().unwrap_or(0),
        mean_run_secs: if runs.is_empty() {
            0.0
        } else {
            total_run as f64 / runs.len() as f64
        },
        wait_to_run_ratio: if total_run == 0 {
            0.0
        } else {
            total_wait as f64 / total_run as f64
        },
    }
}

/// Render an ASCII Gantt chart (`.` = queued wait, `#` = execution).
pub fn render_ascii(chart: &GanttChart, width: usize) -> String {
    let width = width.max(20);
    let t0 = chart.rows.iter().map(|r| r.submitted_at).min().unwrap_or(0);
    let t1 = chart
        .rows
        .iter()
        .filter_map(|r| r.ended_at.or(r.started_at))
        .max()
        .unwrap_or(t0 + 1)
        .max(t0 + 1);
    let span = (t1 - t0) as f64;
    let scale =
        |t: i64| -> usize { (((t - t0) as f64 / span) * (width as f64 - 1.0)).round() as usize };
    let mut out = String::new();
    out.push_str(&format!(
        "simulation {} on {} ({} jobs)\n",
        chart.simulation_id,
        chart.system,
        chart.rows.len()
    ));
    let label_w = chart
        .rows
        .iter()
        .map(|r| r.label.len())
        .max()
        .unwrap_or(4)
        .max(4);
    for row in &chart.rows {
        let mut bar = vec![b' '; width];
        let s = scale(row.submitted_at);
        let st = row.started_at.map(scale).unwrap_or(width - 1);
        let en = row.ended_at.map(scale).unwrap_or(st);
        for cell in bar.iter_mut().take(st.min(width - 1) + 1).skip(s) {
            *cell = b'.';
        }
        for cell in bar.iter_mut().take(en.min(width - 1) + 1).skip(st) {
            *cell = b'#';
        }
        out.push_str(&format!(
            "{:label_w$} |{}|\n",
            row.label,
            String::from_utf8(bar).expect("ascii"),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<GanttRow> {
        vec![
            GanttRow {
                label: "work-r0c0".into(),
                cores: 128,
                submitted_at: 0,
                started_at: Some(600),
                ended_at: Some(4200),
            },
            GanttRow {
                label: "work-r1c0".into(),
                cores: 128,
                submitted_at: 0,
                started_at: Some(1200),
                ended_at: Some(4800),
            },
            GanttRow {
                label: "prejob".into(),
                cores: 0,
                submitted_at: 0,
                started_at: Some(0),
                ended_at: Some(6),
            },
        ]
    }

    #[test]
    fn stats_aggregate_correctly() {
        let s = stats(&rows());
        assert_eq!(s.jobs, 3);
        assert_eq!(s.max_wait_secs, 1200);
        assert!((s.mean_wait_secs - 600.0).abs() < 1e-9);
        assert_eq!(s.median_wait_secs, 600.0);
        let total_run = 3600 + 3600 + 6;
        assert!((s.wait_to_run_ratio - 1800.0 / total_run as f64).abs() < 1e-9);
    }

    #[test]
    fn stats_empty() {
        let s = stats(&[]);
        assert_eq!(s.jobs, 0);
        assert_eq!(s.wait_to_run_ratio, 0.0);
    }

    #[test]
    fn incomplete_rows_excluded_from_run_stats() {
        let r = vec![GanttRow {
            label: "queued".into(),
            cores: 1,
            submitted_at: 100,
            started_at: None,
            ended_at: None,
        }];
        let s = stats(&r);
        assert_eq!(s.jobs, 0);
        assert_eq!(s.mean_run_secs, 0.0);
    }

    #[test]
    fn ascii_render_shape() {
        let chart = GanttChart {
            simulation_id: 7,
            system: "kraken".into(),
            rows: rows(),
        };
        let art = render_ascii(&chart, 40);
        assert!(art.contains("simulation 7 on kraken"));
        assert!(art.contains('#'));
        assert!(art.contains('.'));
        assert_eq!(art.lines().count(), 4);
        // bars are equal width
        let widths: Vec<usize> = art
            .lines()
            .skip(1)
            .map(|l| l.split('|').nth(1).unwrap().len())
            .collect();
        assert!(widths.iter().all(|w| *w == widths[0]));
    }
}
