//! The lease protocol: claim, renew, takeover, release.
//!
//! Multi-daemon ownership follows the paper's architecture to its logical
//! end: since every component talks only through the central database,
//! daemon scale-out needs nothing but a coordination table. Each live
//! simulation has at most one `lease` row; a daemon may step a simulation
//! only while it holds an unexpired lease on it.
//!
//! The protocol is optimistic and entirely CAS-based:
//!
//! * **claim** — no row yet: plain insert at epoch 1. The unique
//!   constraint on `simulation_id` linearizes concurrent first claimers —
//!   the loser's insert fails and it backs off.
//! * **renew** — own row: CAS on `(daemon_id, epoch)` pushing
//!   `expires_at` forward. The epoch does not change.
//! * **takeover** — somebody else's *expired* row: CAS on the old
//!   `(daemon_id, epoch)` installing our identity at `epoch + 1`. Exactly
//!   one peer can win each epoch bump.
//! * **release** — own row, simulation settled: CAS-guarded delete.
//!
//! The epoch is a fencing token. A daemon that pauses (GC-style) past its
//! lease expiry and then resumes still *believes* it owns its simulations;
//! before any GRAM submission the workflow re-reads the lease row
//! ([`crate::workflow::StageCtx`]) and refuses to submit when the epoch has
//! moved — so the new owner and the stale one can never both submit.

use amp_core::models::Lease;
use amp_simdb::orm::{Manager, Model};
use amp_simdb::{Connection, DbError, Query, Value};

/// Result of one claim attempt on one simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum ClaimOutcome {
    /// Fresh claim (no prior lease): we hold `epoch`.
    Claimed { epoch: i64 },
    /// Our own lease renewed; epoch unchanged.
    Renewed { epoch: i64 },
    /// An expired peer lease taken over; epoch was bumped.
    TakenOver { epoch: i64, from: String },
    /// A peer holds a valid lease; leave the simulation alone.
    Held { by: String, until: i64 },
    /// Lost a race (insert collision or CAS miss); retry next tick.
    Lost,
}

impl ClaimOutcome {
    /// The epoch we hold after this outcome, if we hold the lease at all.
    pub fn held_epoch(&self) -> Option<i64> {
        match self {
            ClaimOutcome::Claimed { epoch }
            | ClaimOutcome::Renewed { epoch }
            | ClaimOutcome::TakenOver { epoch, .. } => Some(*epoch),
            ClaimOutcome::Held { .. } | ClaimOutcome::Lost => None,
        }
    }
}

/// Claim, renew, or take over the lease on `sim_id` for `daemon_id`.
///
/// `app` is the simulation's application id, recorded on the lease row so
/// operators can see per-application ownership at a glance. `now` is the
/// claimer's *own* clock (simulated seconds) — daemons with skewed clocks
/// disagree about expiry, which is exactly the hazard the epoch fencing
/// absorbs. The new expiry is `now + ttl_secs`.
pub fn claim(
    conn: &Connection,
    daemon_id: &str,
    sim_id: i64,
    app: &str,
    now: i64,
    ttl_secs: i64,
) -> Result<ClaimOutcome, DbError> {
    let leases = Manager::<Lease>::new(conn.clone());
    let existing = leases.first(&Query::new().eq("simulation_id", sim_id))?;
    match existing {
        None => {
            let mut lease = Lease::new(sim_id, daemon_id, app, 1, now + ttl_secs);
            match leases.create(&mut lease) {
                Ok(_) => Ok(ClaimOutcome::Claimed { epoch: 1 }),
                // Unique violation on simulation_id: a peer inserted
                // between our read and our write. That peer owns epoch 1.
                Err(DbError::UniqueViolation { .. }) => Ok(ClaimOutcome::Lost),
                Err(e) => Err(e),
            }
        }
        Some(lease) => {
            let id = lease.id.expect("selected lease has id");
            if lease.daemon_id == daemon_id {
                // Renewal CAS: if the row changed under us (a peer took
                // over during our pause), the swap refuses and we have
                // effectively lost the simulation.
                let swapped = conn.compare_and_swap(
                    Lease::TABLE,
                    id,
                    &[
                        ("daemon_id", Value::from(daemon_id)),
                        ("epoch", Value::Int(lease.epoch)),
                    ],
                    &[("expires_at", Value::Timestamp(now + ttl_secs))],
                )?;
                if swapped {
                    Ok(ClaimOutcome::Renewed { epoch: lease.epoch })
                } else {
                    Ok(ClaimOutcome::Lost)
                }
            } else if !lease.valid_at(now) {
                // Expired peer lease: fence it out by bumping the epoch.
                let swapped = conn.compare_and_swap(
                    Lease::TABLE,
                    id,
                    &[
                        ("daemon_id", Value::from(lease.daemon_id.as_str())),
                        ("epoch", Value::Int(lease.epoch)),
                    ],
                    &[
                        ("daemon_id", Value::from(daemon_id)),
                        ("epoch", Value::Int(lease.epoch + 1)),
                        ("expires_at", Value::Timestamp(now + ttl_secs)),
                    ],
                )?;
                if swapped {
                    Ok(ClaimOutcome::TakenOver {
                        epoch: lease.epoch + 1,
                        from: lease.daemon_id,
                    })
                } else {
                    Ok(ClaimOutcome::Lost)
                }
            } else {
                Ok(ClaimOutcome::Held {
                    by: lease.daemon_id,
                    until: lease.expires_at,
                })
            }
        }
    }
}

/// Release our lease on `sim_id` (simulation settled). A no-op when the
/// lease is already gone or has been taken over — releasing is advisory;
/// expiry is the real cleanup path.
pub fn release(conn: &Connection, daemon_id: &str, sim_id: i64) -> Result<(), DbError> {
    let leases = Manager::<Lease>::new(conn.clone());
    if let Some(lease) = leases.first(&Query::new().eq("simulation_id", sim_id))? {
        if lease.daemon_id == daemon_id {
            // Benign race: a takeover between the read and this delete
            // removes a row the new owner immediately re-creates on its
            // next claim. Settled simulations leave the live set, so no
            // further submissions can ride on the recreated lease.
            leases.delete(lease.id.expect("selected lease has id"))?;
        }
    }
    Ok(())
}

/// Read the current lease on `sim_id`, if any.
pub fn current(conn: &Connection, sim_id: i64) -> Result<Option<Lease>, DbError> {
    Manager::<Lease>::new(conn.clone()).first(&Query::new().eq("simulation_id", sim_id))
}

/// All leases held by `daemon_id`.
pub fn held_by(conn: &Connection, daemon_id: &str) -> Result<Vec<Lease>, DbError> {
    Manager::<Lease>::new(conn.clone()).filter(&Query::new().eq("daemon_id", daemon_id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use amp_core::models::{Allocation, AmpUser, Simulation, Star};
    use amp_simdb::Db;
    use amp_stellar::StellarParams;

    fn db_with_sim() -> (Db, Connection, i64) {
        let db = Db::in_memory();
        amp_core::setup::initialize(&db).unwrap();
        let admin = db.connect(amp_core::roles::ROLE_ADMIN).unwrap();
        let mut user = AmpUser::new("u", "u@x.edu", "h", 0);
        Manager::<AmpUser>::new(admin.clone())
            .create(&mut user)
            .unwrap();
        let sky = amp_stellar::synthetic_sky(1, 1);
        let mut star = Star::from_catalog(&sky[0], "local");
        Manager::<Star>::new(admin.clone())
            .create(&mut star)
            .unwrap();
        let mut alloc = Allocation::new("kraken", "TG-1", 1000.0);
        Manager::<Allocation>::new(admin.clone())
            .create(&mut alloc)
            .unwrap();
        let mut sim = Simulation::new_direct(
            star.id.unwrap(),
            user.id.unwrap(),
            StellarParams::sun(),
            "kraken",
            alloc.id.unwrap(),
            0,
        );
        let sim_id = Manager::<Simulation>::new(admin.clone())
            .create(&mut sim)
            .unwrap();
        let daemon = db.connect(amp_core::roles::ROLE_DAEMON).unwrap();
        (db, daemon, sim_id)
    }

    #[test]
    fn claim_renew_takeover_release_lifecycle() {
        let (_db, conn, sim) = db_with_sim();
        // fresh claim at epoch 1
        assert_eq!(
            claim(&conn, "d0", sim, "stellar", 0, 100).unwrap(),
            ClaimOutcome::Claimed { epoch: 1 }
        );
        // a valid lease repels peers
        assert_eq!(
            claim(&conn, "d1", sim, "stellar", 50, 100).unwrap(),
            ClaimOutcome::Held {
                by: "d0".into(),
                until: 100
            }
        );
        // the owner renews without an epoch bump
        assert_eq!(
            claim(&conn, "d0", sim, "stellar", 60, 100).unwrap(),
            ClaimOutcome::Renewed { epoch: 1 }
        );
        // past expiry a peer takes over with a bumped epoch
        assert_eq!(
            claim(&conn, "d1", sim, "stellar", 200, 100).unwrap(),
            ClaimOutcome::TakenOver {
                epoch: 2,
                from: "d0".into()
            }
        );
        // the stale owner's renewal path CAS-misses
        assert_eq!(claim(&conn, "d0", sim, "stellar", 201, 100).unwrap(), {
            ClaimOutcome::Held {
                by: "d1".into(),
                until: 300,
            }
        });
        // only the holder's release removes the row
        release(&conn, "d0", sim).unwrap();
        assert!(current(&conn, sim).unwrap().is_some());
        release(&conn, "d1", sim).unwrap();
        assert!(current(&conn, sim).unwrap().is_none());
    }

    #[test]
    fn concurrent_first_claim_has_one_winner() {
        let (db, _conn, sim) = db_with_sim();
        let winners: usize = std::thread::scope(|s| {
            (0..8)
                .map(|i| {
                    let db = db.clone();
                    s.spawn(move || {
                        let c = db.connect(amp_core::roles::ROLE_DAEMON).unwrap();
                        let out = claim(&c, &format!("d{i}"), sim, "stellar", 0, 1000).unwrap();
                        matches!(out, ClaimOutcome::Claimed { .. }) as usize
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(winners, 1);
        let lease = current(&db.connect("daemon").unwrap(), sim)
            .unwrap()
            .unwrap();
        assert_eq!(lease.epoch, 1);
    }

    #[test]
    fn concurrent_takeover_bumps_epoch_exactly_once() {
        let (db, conn, sim) = db_with_sim();
        claim(&conn, "d0", sim, "stellar", 0, 10).unwrap();
        // lease expired at t=10; eight peers race the takeover at t=50
        let winners: usize = std::thread::scope(|s| {
            (0..8)
                .map(|i| {
                    let db = db.clone();
                    s.spawn(move || {
                        let c = db.connect(amp_core::roles::ROLE_DAEMON).unwrap();
                        let out = claim(&c, &format!("p{i}"), sim, "stellar", 50, 1000).unwrap();
                        matches!(out, ClaimOutcome::TakenOver { .. }) as usize
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(winners, 1);
        let lease = current(&conn, sim).unwrap().unwrap();
        assert_eq!(lease.epoch, 2, "one epoch bump for one takeover");
    }
}
