//! The executables installed on remote systems.
//!
//! §4.3 describes four remote pieces, all invoked through GRAM: a fork
//! pre-job script building the runtime directory tree, the model itself
//! through the scheduler (staging in the input text file and staging out
//! its restart progress file), a fork post-job script consolidating output
//! with tar, and a fork cleanup script removing the environment. Plus the
//! two model executables per science application: the forward model
//! (direct/solution runs) and the GA driver. The wrappers here are
//! app-generic — all science-specific behavior is delegated through the
//! [`ScienceApp`] trait, so installing a new application is one registry
//! entry, not a new pair of executables.

use std::sync::Arc;

use amp_core::app::{self, ScienceApp};
use amp_ga::{Checkpoint, Ga, GaConfig};
use amp_grid::{AppContext, AppRun, Application, SiteFs};

use crate::problem::AppProblem;

// The stellar `final.json` artifact, re-exported from its new home so
// existing callers keep compiling.
pub use amp_core::app::stellar::GaRunResult;

/// Remote executable paths, as a real deployment would install them. The
/// stellar executables keep their pre-registry locations; other apps live
/// under `/amp/bin/<app>/{model,ga}` (see [`ScienceApp::model_path`]).
pub mod paths {
    pub const PREJOB: &str = "/amp/bin/prejob.sh";
    pub const ASTEC: &str = "/amp/bin/astec";
    pub const MPIKAIA: &str = "/amp/bin/mpikaia";
    pub const POSTJOB: &str = "/amp/bin/postjob.sh";
    pub const CLEANUP: &str = "/amp/bin/cleanup.sh";
}

/// Remote file names within a job working directory.
pub mod files {
    /// Marker proving the pre-job stage ran.
    pub const ENV_MARKER: &str = "ENVIRONMENT";
    /// Static physics tables the pre-job stage prepopulates.
    pub const STATIC_INPUT: &str = "static/opacity_tables.dat";
    /// Direct/solution run input.
    pub const PARAMS_IN: &str = "input.params";
    /// Direct/solution run output.
    pub const MODEL_OUT: &str = "output.json";
    /// GA observation input.
    pub const OBS_IN: &str = "observations.in";
    /// GA restart progress file (staged out every invocation, §4.3).
    pub const RESTART: &str = "restart.json";
    /// Per-iteration cost log (gen index, simulated minutes).
    pub const ITER_LOG: &str = "iterations.log";
    /// Best-of-run result once the GA converges.
    pub const FINAL: &str = "final.json";
    /// Consolidated output bundle from the post-job stage.
    pub const RESULTS_TAR: &str = "results.tar";
}

/// Pre-job fork script: builds the runtime tree (§4.3 "creates a new empty
/// copy of the model runtime directory structure and prepopulates the tree
/// with static input files").
pub struct PreJobScript;

impl Application for PreJobScript {
    fn run(&self, _ctx: &AppContext<'_>) -> AppRun {
        AppRun::success(0.1)
            .with_output(files::ENV_MARKER, b"amp runtime v1".to_vec())
            .with_output(
                files::STATIC_INPUT,
                b"# static opacity tables (prepopulated)".to_vec(),
            )
    }
}

/// The forward-model executable of one science application (direct runs
/// and solution evaluation). For stellar this is ASTEC.
pub struct ModelApp {
    app: Arc<dyn ScienceApp>,
}

impl ModelApp {
    pub fn new(app: Arc<dyn ScienceApp>) -> Self {
        ModelApp { app }
    }
}

impl Application for ModelApp {
    fn run(&self, ctx: &AppContext<'_>) -> AppRun {
        let Some(input) = ctx.read_input(files::PARAMS_IN) else {
            return AppRun::failed(0.01, "missing input.params");
        };
        let text = String::from_utf8_lossy(&input);
        match self
            .app
            .run_model(&text, ctx.profile.model_benchmark_minutes)
        {
            Ok(run) => AppRun::success(run.cost_minutes)
                .with_output(files::MODEL_OUT, run.output)
                .with_output("model.log", run.log.into_bytes()),
            Err(e) => AppRun::failed(e.cost_minutes, &e.detail),
        }
    }
}

/// The GA driver executable of one science application: runs as many
/// iterations as fit in its walltime budget, staging out the restart
/// progress file either way. For stellar this is MPIKAIA.
///
/// args: `[population, generations, seed]`.
pub struct GaApp {
    app: Arc<dyn ScienceApp>,
}

impl GaApp {
    pub fn new(app: Arc<dyn ScienceApp>) -> Self {
        GaApp { app }
    }

    fn iteration_cost(app: &dyn ScienceApp, ga: &Ga<'_, AppProblem>, bench: f64) -> f64 {
        let phenotypes: Vec<Vec<f64>> = ga
            .population()
            .iter()
            .map(|ind| ind.phenotype.clone())
            .collect();
        app.generation_minutes(&phenotypes, bench)
    }
}

impl Application for GaApp {
    fn run(&self, ctx: &AppContext<'_>) -> AppRun {
        let population: usize = match ctx.args.first().and_then(|a| a.parse().ok()) {
            Some(v) => v,
            None => return AppRun::failed(0.01, "bad population arg"),
        };
        let generations: u32 = match ctx.args.get(1).and_then(|a| a.parse().ok()) {
            Some(v) => v,
            None => return AppRun::failed(0.01, "bad generations arg"),
        };
        let seed: u64 = match ctx.args.get(2).and_then(|a| a.parse().ok()) {
            Some(v) => v,
            None => return AppRun::failed(0.01, "bad seed arg"),
        };

        let Some(obs_raw) = ctx.read_input(files::OBS_IN) else {
            return AppRun::failed(0.01, "missing observations.in");
        };
        let obs_text = String::from_utf8_lossy(&obs_raw);
        let f = match self.app.fitness_fn(&obs_text) {
            Ok(f) => f,
            Err(detail) => return AppRun::failed(0.01, &detail),
        };
        let problem = AppProblem::new(self.app.clone(), f);

        let config = GaConfig {
            population,
            generations,
            ..GaConfig::default()
        };
        let mut iter_log = ctx
            .read_input(files::ITER_LOG)
            .map(|d| String::from_utf8_lossy(&d).into_owned())
            .unwrap_or_default();

        let bench = ctx.profile.model_benchmark_minutes;
        let budget = ctx.wall_minutes * 0.97;
        let mut consumed = 0.0;

        let mut ga = match ctx.read_input(files::RESTART) {
            Some(raw) => {
                let text = String::from_utf8_lossy(&raw);
                let cp = match Checkpoint::from_text(&text) {
                    Ok(cp) => cp,
                    Err(e) => return AppRun::failed(0.01, &format!("bad restart file: {e}")),
                };
                if cp.config != config {
                    return AppRun::failed(0.01, "restart file config mismatch");
                }
                match cp.resume(&problem) {
                    Ok(ga) => ga,
                    Err(e) => return AppRun::failed(0.01, &format!("restart rejected: {e}")),
                }
            }
            None => {
                let ga = Ga::new(&problem, config, seed);
                // Generation 0: the initial random population is evaluated
                // too; its cost is the paper's "first iteration measured
                // time" yardstick.
                let c = Self::iteration_cost(self.app.as_ref(), &ga, bench);
                consumed += c;
                iter_log.push_str(&format!("0 {c:.4}\n"));
                ga
            }
        };

        let mut last_cost = consumed.max(bench);
        while !ga.finished() && consumed + last_cost <= budget {
            ga.step();
            let c = Self::iteration_cost(self.app.as_ref(), &ga, bench);
            consumed += c;
            last_cost = c;
            iter_log.push_str(&format!("{} {c:.4}\n", ga.generation()));
        }

        let cp = Checkpoint::capture(&ga);
        let mut run = AppRun::success(consumed.max(0.05));
        run.checkpoint_outputs
            .insert(files::RESTART.to_string(), cp.to_text().into_bytes());
        run.checkpoint_outputs
            .insert(files::ITER_LOG.to_string(), iter_log.into_bytes());
        if cp.converged() {
            let best = ga.best();
            run.outputs.insert(
                files::FINAL.to_string(),
                self.app
                    .final_artifact(&best.phenotype, best.fitness, ga.generation()),
            );
        }
        run
    }
}

/// Post-job fork script: tar up the simulation tree for staging out.
/// arg0 = the simulation root prefix to consolidate.
pub struct PostJobScript;

impl Application for PostJobScript {
    fn run(&self, ctx: &AppContext<'_>) -> AppRun {
        // The tar is produced at completion by listing the tree as the
        // script would; contents are gathered from the fs snapshot.
        let root = ctx
            .args
            .first()
            .cloned()
            .unwrap_or_else(|| ctx.workdir.clone());
        let paths = ctx.fs.list_tree(&root);
        if paths.is_empty() {
            return AppRun::failed(0.02, &format!("nothing to tar under {root}"));
        }
        let entries: Vec<(String, Vec<u8>)> = paths
            .iter()
            .filter(|p| !p.ends_with(files::RESULTS_TAR))
            .map(|p| (p.clone(), ctx.fs.read(p).expect("listed file").to_vec()))
            .collect();
        let data = serde_json::to_vec(&entries).expect("tar serializes");
        AppRun::success(0.05).with_output(files::RESULTS_TAR, data)
    }
}

/// Cleanup fork script: reports success; the daemon removes the tree via
/// the returned marker (the simulator applies outputs at completion, so
/// deletion happens in [`cleanup_tree`] driven by the workflow).
pub struct CleanupScript;

impl Application for CleanupScript {
    fn run(&self, _ctx: &AppContext<'_>) -> AppRun {
        AppRun::success(0.02).with_output("CLEANUP_DONE", b"ok".to_vec())
    }
}

/// Remove a simulation's execution environment — invoked by the workflow
/// after the cleanup job reports success (§4.3: "a final cleanup stage
/// ensures that the execution environment has been removed").
pub fn cleanup_tree(fs: &mut SiteFs, root: &str) -> usize {
    fs.remove_tree(root)
}

/// Install the full AMP software stack on a site (what the science PI does
/// "using sudo on the remote resource personally", §3): the shared
/// pre/post/cleanup scripts plus the model and GA executables of every
/// registered science application at that application's paths.
pub fn install_amp_stack(grid: &mut amp_grid::Grid, site: &str) {
    grid.install_app(site, paths::PREJOB, Arc::new(PreJobScript));
    grid.install_app(site, paths::POSTJOB, Arc::new(PostJobScript));
    grid.install_app(site, paths::CLEANUP, Arc::new(CleanupScript));
    for a in app::builtin() {
        grid.install_app(site, &a.model_path(), Arc::new(ModelApp::new(a.clone())));
        grid.install_app(site, &a.ga_path(), Arc::new(GaApp::new(a.clone())));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amp_core::marshal;
    use amp_grid::systems::{kraken, lonestar};
    use amp_grid::SystemProfile;
    use amp_stellar::{synthesize, Domain, StellarParams};

    fn stellar_model() -> ModelApp {
        ModelApp::new(app::lookup("stellar").expect("stellar registered"))
    }

    fn stellar_ga() -> GaApp {
        GaApp::new(app::lookup("stellar").expect("stellar registered"))
    }

    fn ctx<'a>(
        fs: &'a SiteFs,
        profile: &'a SystemProfile,
        args: Vec<String>,
        wall_minutes: f64,
    ) -> AppContext<'a> {
        AppContext {
            workdir: "amp/sim1".into(),
            args,
            profile,
            cores: 128,
            wall_minutes,
            started_at: amp_grid::SimTime(0),
            fs,
        }
    }

    #[test]
    fn prejob_creates_environment() {
        let fs = SiteFs::new("kraken", 1 << 20);
        let profile = kraken();
        let run = PreJobScript.run(&ctx(&fs, &profile, vec![], 10.0));
        assert!(run.failure.is_none());
        assert!(run.outputs.contains_key(files::ENV_MARKER));
        assert!(run.outputs.contains_key(files::STATIC_INPUT));
    }

    #[test]
    fn astec_runs_benchmark_star() {
        let mut fs = SiteFs::new("lonestar", 1 << 20);
        let profile = lonestar();
        fs.write(
            "amp/sim1/input.params",
            marshal::generate_params_file(&StellarParams::benchmark()).into_bytes(),
        )
        .unwrap();
        let run = stellar_model().run(&ctx(&fs, &profile, vec![], 60.0));
        assert!(run.failure.is_none());
        // Table 1: benchmark star on Lonestar = 15.1 simulated minutes
        assert!(
            (run.cost_minutes - 15.1).abs() < 0.01,
            "{}",
            run.cost_minutes
        );
        let out: amp_stellar::ModelOutput =
            serde_json::from_slice(&run.outputs[files::MODEL_OUT]).unwrap();
        assert!(out.frequencies.len() > 30);
    }

    #[test]
    fn astec_rejects_missing_and_bad_input() {
        let mut fs = SiteFs::new("kraken", 1 << 20);
        let profile = kraken();
        let run = stellar_model().run(&ctx(&fs, &profile, vec![], 60.0));
        assert!(run.failure.unwrap().contains("missing"));
        fs.write("amp/sim1/input.params", b"garbage".to_vec())
            .unwrap();
        let run = stellar_model().run(&ctx(&fs, &profile, vec![], 60.0));
        assert!(run.failure.unwrap().contains("bad input"));
    }

    #[test]
    fn astec_out_of_domain_is_model_failure() {
        let mut fs = SiteFs::new("kraken", 1 << 20);
        let profile = kraken();
        let mut p = StellarParams::benchmark();
        p.mass = 1.75;
        p.age = 0.1; // maximally hot corner: off the pulsation grid
        fs.write(
            "amp/sim1/input.params",
            marshal::generate_params_file(&p).into_bytes(),
        )
        .unwrap();
        let run = stellar_model().run(&ctx(&fs, &profile, vec![], 60.0));
        assert!(run.failure.unwrap().contains("model failure"));
    }

    fn stage_observations(fs: &mut SiteFs) {
        let obs = synthesize(
            "KIC 1",
            &StellarParams {
                mass: 1.05,
                metallicity: 0.02,
                helium: 0.27,
                alpha: 2.0,
                age: 4.0,
            },
            &Domain::default(),
            0.1,
            5,
        )
        .unwrap();
        fs.write(
            "amp/sim1/observations.in",
            marshal::generate_observation_file(&obs).into_bytes(),
        )
        .unwrap();
    }

    #[test]
    fn mpikaia_respects_walltime_and_checkpoints() {
        let mut fs = SiteFs::new("kraken", 4 << 20);
        let profile = kraken();
        stage_observations(&mut fs);
        // 6h budget on kraken (23.6 min/iter) fits ~14 iterations
        let args: Vec<String> = vec!["30".into(), "50".into(), "7".into()];
        let run = stellar_ga().run(&ctx(&fs, &profile, args, 360.0));
        assert!(run.failure.is_none());
        assert!(run.cost_minutes <= 360.0 * 0.98, "{}", run.cost_minutes);
        assert!(run.cost_minutes > 200.0, "{}", run.cost_minutes);
        let cp = Checkpoint::from_text(&String::from_utf8_lossy(
            &run.checkpoint_outputs[files::RESTART],
        ))
        .unwrap();
        assert!(cp.generation > 5 && cp.generation < 50);
        assert!(!run.outputs.contains_key(files::FINAL), "not converged yet");
        let log = String::from_utf8_lossy(&run.checkpoint_outputs[files::ITER_LOG]).into_owned();
        assert_eq!(log.lines().count(), cp.generation as usize + 1);
    }

    #[test]
    fn mpikaia_continuation_chain_reaches_convergence() {
        let mut fs = SiteFs::new("kraken", 16 << 20);
        let profile = kraken();
        stage_observations(&mut fs);
        let args: Vec<String> = vec!["20".into(), "25".into(), "3".into()];
        let mut hops = 0;
        loop {
            hops += 1;
            assert!(hops < 20, "no convergence after {hops} hops");
            let run = stellar_ga().run(&ctx(&fs, &profile, args.clone(), 240.0));
            assert!(run.failure.is_none(), "{:?}", run.failure);
            for (name, data) in run.checkpoint_outputs.iter().chain(run.outputs.iter()) {
                fs.write(&format!("amp/sim1/{name}"), data.clone()).unwrap();
            }
            if fs.exists(&format!("amp/sim1/{}", files::FINAL)) {
                break;
            }
        }
        assert!(hops >= 2, "walltime should force at least one continuation");
        let result: GaRunResult =
            serde_json::from_slice(fs.read("amp/sim1/final.json").unwrap()).unwrap();
        assert_eq!(result.generations, 25);
        assert!(result.best_fitness > 0.0);
        // iteration log covers gen 0..=25
        let log = String::from_utf8_lossy(fs.read("amp/sim1/iterations.log").unwrap()).into_owned();
        assert_eq!(log.lines().count(), 26);
    }

    #[test]
    fn mpikaia_rejects_corrupt_restart() {
        let mut fs = SiteFs::new("kraken", 1 << 20);
        let profile = kraken();
        stage_observations(&mut fs);
        fs.write("amp/sim1/restart.json", b"{broken".to_vec())
            .unwrap();
        let args: Vec<String> = vec!["20".into(), "25".into(), "3".into()];
        let run = stellar_ga().run(&ctx(&fs, &profile, args, 240.0));
        assert!(run.failure.unwrap().contains("bad restart"));
    }

    #[test]
    fn curvefit_ga_converges_in_one_cheap_job() {
        let cf = app::lookup("curvefit").expect("curvefit registered");
        let truth = amp_core::app::curvefit::CurveParams {
            amplitude: 1.4,
            decay: 0.25,
            omega: 4.0,
            phase: 0.6,
            offset: 0.3,
        };
        let obs = amp_core::app::curvefit::synthesize_curve("CF 1", &truth, 60, 0.1, 9);
        let mut fs = SiteFs::new("kraken", 4 << 20);
        let profile = kraken();
        fs.write(
            "amp/sim1/observations.in",
            cf.observation_input(&serde_json::to_string(&obs).unwrap())
                .unwrap()
                .into_bytes(),
        )
        .unwrap();
        let args: Vec<String> = vec!["24".into(), "40".into(), "11".into()];
        let run = GaApp::new(cf.clone()).run(&ctx(&fs, &profile, args, 360.0));
        assert!(run.failure.is_none(), "{:?}", run.failure);
        // Whole 40-generation run fits one walltime: curvefit is cheap.
        let final_bytes = run
            .outputs
            .get(files::FINAL)
            .expect("curvefit converges in a single job");
        let fitness = cf.final_fitness(final_bytes).unwrap();
        assert!(fitness > 0.05, "fitness {fitness}");
        assert!(run.cost_minutes < 360.0 * 0.5, "{}", run.cost_minutes);
    }

    #[test]
    fn postjob_tars_and_cleanup_marks() {
        let mut fs = SiteFs::new("kraken", 1 << 20);
        let profile = kraken();
        fs.write("amp/sim1/run0/final.json", b"{}".to_vec())
            .unwrap();
        fs.write("amp/sim1/ENVIRONMENT", b"v1".to_vec()).unwrap();
        let run = PostJobScript.run(&ctx(&fs, &profile, vec!["amp/sim1".into()], 5.0));
        assert!(run.failure.is_none());
        let entries = SiteFs::untar(&run.outputs[files::RESULTS_TAR]).unwrap();
        assert_eq!(entries.len(), 2);

        let c = CleanupScript.run(&ctx(&fs, &profile, vec![], 5.0));
        assert!(c.failure.is_none());
        assert_eq!(cleanup_tree(&mut fs, "amp/sim1"), 2);
        assert_eq!(fs.file_count(), 0);
    }

    #[test]
    fn install_stack_registers_all_apps() {
        let mut grid = amp_grid::Grid::new();
        grid.add_site(kraken());
        install_amp_stack(&mut grid, "kraken");
        let site = grid.site("kraken").unwrap();
        for p in [
            paths::PREJOB,
            paths::ASTEC,
            paths::MPIKAIA,
            paths::POSTJOB,
            paths::CLEANUP,
            "/amp/bin/curvefit/model",
            "/amp/bin/curvefit/ga",
        ] {
            assert!(site.apps.get(p).is_some(), "{p} missing");
        }
    }
}
