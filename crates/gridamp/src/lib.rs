//! # amp-gridamp — the GridAMP workflow daemon
//!
//! The back end of the AMP gateway reproduction (Woitaszek et al., GCE
//! 2009): the daemon that reads simulation requests from the central
//! database, drives them across a (simulated) TeraGrid with plain GRAM +
//! GridFTP client calls, and writes statuses back — never talking to the
//! web portal directly (Figure 2).
//!
//! * [`workflow`] — the Listing-1 state machine (state → checks → next)
//!   plus the base-class stages shared by both job types;
//! * [`direct`] / [`optimize`] — the two small derived workflows (job
//!   definitions + postprocessing only, as the paper prescribes);
//! * [`apps`] — the remote executables (pre/post/cleanup scripts, the
//!   ASTEC forward model, the MPIKAIA GA with restart files);
//! * [`problem`] — the GA↔stellar-model fitness coupling;
//! * [`daemon`] — the poll loop, failure taxonomy (transient / model /
//!   daemon), hold-and-resume, notifications, heartbeat monitor;
//! * [`lease`] — the multi-daemon lease protocol: CAS claim/renew/
//!   takeover with fencing epochs, so several daemons share one database
//!   without ever double-driving a simulation;
//! * [`gantt`] — the §6 queue-wait analysis tool;
//! * [`setup`] — deployment wiring for tests, examples, and benches.

pub mod advisor;
pub mod apps;
pub mod clilog;
pub mod daemon;
pub mod direct;
pub mod error;
pub mod gantt;
pub mod lease;
pub mod optimize;
pub mod problem;
pub mod setup;
pub mod workflow;

pub use advisor::{assess, recommend, Assessment};
pub use apps::GaRunResult;
pub use clilog::{OpOutcome, OpsEntry, OpsLog};
pub use daemon::{merge_reports, DaemonMonitor, GridAmp, LeaseHealth, TickProfile, TickReport};
pub use error::WorkflowError;
pub use gantt::{chart_for, render_ascii, stats, GanttChart, GanttRow, WaitRunStats};
pub use lease::ClaimOutcome;
pub use optimize::OptimizationResult;
pub use problem::StellarFitProblem;
pub use setup::{
    deploy, deploy_cluster, deploy_multi, seed_curvefit_fixtures, seed_fixtures, small_spec,
    ClusterDeployment, Deployment,
};
pub use workflow::{workflow_table, DaemonConfig, StageCtx};

#[cfg(test)]
mod end_to_end {
    use super::*;
    use amp_core::models::{Notification, Simulation};
    use amp_core::status::{JobPurpose, SimStatus};
    use amp_core::{NotifyMode, SimKind};
    use amp_grid::systems::kraken;
    use amp_grid::{Service, SimDuration, SimTime};
    use amp_simdb::orm::Manager;
    use amp_simdb::Query;
    use amp_stellar::{ModelOutput, StellarParams};

    fn fast_config() -> DaemonConfig {
        DaemonConfig {
            site: "kraken".into(),
            work_walltime_hours: 6.0,
            poll_interval_secs: 300,
            ..DaemonConfig::default()
        }
    }

    fn truth() -> StellarParams {
        StellarParams {
            mass: 1.05,
            metallicity: 0.02,
            helium: 0.27,
            alpha: 2.0,
            age: 4.0,
        }
    }

    fn submit_direct(dep: &Deployment, star: i64, user: i64, alloc: i64) -> i64 {
        let web = dep.db.connect(amp_core::roles::ROLE_WEB).unwrap();
        let sims = Manager::<Simulation>::new(web);
        let mut sim = Simulation::new_direct(
            star,
            user,
            StellarParams::benchmark(),
            "kraken",
            alloc,
            dep.grid.now().as_secs() as i64,
        );
        sims.create(&mut sim).unwrap()
    }

    #[test]
    fn direct_run_end_to_end() {
        let mut dep = deploy(kraken(), fast_config(), None).unwrap();
        let (user, star, alloc, _obs) = seed_fixtures(&dep.db, "kraken", &truth(), 1).unwrap();
        let sim_id = submit_direct(&dep, star, user, alloc);

        let ticks = dep.daemon.run_until_settled(&dep.grid, 48.0);
        assert!(ticks > 2);

        let admin = dep.db.connect(amp_core::roles::ROLE_ADMIN).unwrap();
        let sims = Manager::<Simulation>::new(admin.clone());
        let sim = sims.get(sim_id).unwrap();
        assert_eq!(sim.status, SimStatus::Done, "msg: {}", sim.status_message);
        assert_eq!(sim.progress, 1.0);
        assert!(sim.completed_at.is_some());

        // result parses back into a model output
        let out: ModelOutput = serde_json::from_str(sim.result_json.as_ref().unwrap()).unwrap();
        assert!(out.frequencies.len() > 30);
        // §2: direct runs take minutes, not hours, of simulated time
        let elapsed = sim.completed_at.unwrap() - sim.created_at;
        assert!(elapsed < 3 * 3600, "direct run took {elapsed}s");

        // remote environment was cleaned up
        assert_eq!(
            dep.grid
                .site("kraken")
                .unwrap()
                .fs
                .list_tree(&format!("amp/sim{sim_id}"))
                .len(),
            0
        );

        // star flagged as having results
        let stars = Manager::<amp_core::models::Star>::new(admin.clone());
        assert!(stars.get(star).unwrap().has_results);

        // SUs were charged (1 core * ~24 min * 1.623)
        let allocs = Manager::<amp_core::models::Allocation>::new(admin);
        let a = allocs.get(alloc).unwrap();
        assert!(a.su_used > 0.1 && a.su_used < 5.0, "su_used {}", a.su_used);
    }

    #[test]
    fn optimization_run_end_to_end_with_continuations() {
        let mut dep = deploy(kraken(), fast_config(), None).unwrap();
        let (user, star, alloc, obs) = seed_fixtures(&dep.db, "kraken", &truth(), 2).unwrap();

        let web = dep.db.connect(amp_core::roles::ROLE_WEB).unwrap();
        let sims = Manager::<Simulation>::new(web);
        let mut sim =
            Simulation::new_optimization(star, user, small_spec(5), obs, "kraken", alloc, 0);
        let sim_id = sims.create(&mut sim).unwrap();

        dep.daemon.run_until_settled(&dep.grid, 24.0 * 14.0);

        let admin = dep.db.connect(amp_core::roles::ROLE_ADMIN).unwrap();
        let sims = Manager::<Simulation>::new(admin.clone());
        let done = sims.get(sim_id).unwrap();
        assert_eq!(done.status, SimStatus::Done, "msg: {}", done.status_message);

        let result: OptimizationResult =
            serde_json::from_str(done.result_json.as_ref().unwrap()).unwrap();
        assert_eq!(result.runs.len(), 2);
        assert_eq!(result.best.generations, 30);
        assert!(
            result.best.best_fitness
                >= result.runs[0].best_fitness.min(result.runs[1].best_fitness)
        );
        assert!(result.detail.frequencies.len() > 30);

        // Figure 1 shape: per-run job chains with continuations (30 gens x
        // ~24 min/gen = ~12h > 6h walltime -> at least 2 jobs per run),
        // plus the solution evaluation.
        let jobs = Manager::<amp_core::models::GridJobRecord>::new(admin);
        let work = jobs
            .filter(
                &Query::new()
                    .eq("simulation_id", sim_id)
                    .eq("purpose", "WORK"),
            )
            .unwrap();
        for r in 0..2 {
            let chain: Vec<_> = work.iter().filter(|j| j.ga_run == r).collect();
            assert!(chain.len() >= 2, "run {r} had {} jobs", chain.len());
        }
        let solution = jobs
            .filter(
                &Query::new()
                    .eq("simulation_id", sim_id)
                    .eq("purpose", "SOLUTION"),
            )
            .unwrap();
        assert_eq!(solution.len(), 1);
    }

    #[test]
    fn transient_outage_is_retried_silently() {
        let mut dep = deploy(kraken(), fast_config(), None).unwrap();
        let (user, star, alloc, _obs) = seed_fixtures(&dep.db, "kraken", &truth(), 3).unwrap();
        // GRAM+GridFTP down for the first 2 simulated hours
        dep.grid
            .faults
            .add_outage("kraken", Service::Both, SimTime(0), SimTime(7200));
        let sim_id = submit_direct(&dep, star, user, alloc);

        dep.daemon.run_until_settled(&dep.grid, 48.0);

        let admin = dep.db.connect(amp_core::roles::ROLE_ADMIN).unwrap();
        let sim = Manager::<Simulation>::new(admin.clone())
            .get(sim_id)
            .unwrap();
        assert_eq!(sim.status, SimStatus::Done, "msg: {}", sim.status_message);

        // admins were notified of the transient; the user only got the
        // completion mail (§4.4's silence guarantee)
        let notes = Manager::<Notification>::new(admin).all().unwrap();
        let admin_notes: Vec<_> = notes.iter().filter(|n| n.user_id.is_none()).collect();
        assert!(!admin_notes.is_empty());
        let user_notes: Vec<_> = notes.iter().filter(|n| n.user_id == Some(user)).collect();
        assert_eq!(user_notes.len(), 1);
        assert!(user_notes[0].subject.contains("complete"));
    }

    #[test]
    fn model_failure_holds_then_resumes() {
        let mut dep = deploy(kraken(), fast_config(), None).unwrap();
        let (user, star, alloc, _obs) = seed_fixtures(&dep.db, "kraken", &truth(), 4).unwrap();

        // out-of-grid parameters: the model executable will fail
        let web = dep.db.connect(amp_core::roles::ROLE_WEB).unwrap();
        let sims = Manager::<Simulation>::new(web);
        let mut bad = StellarParams::benchmark();
        bad.mass = 1.75;
        bad.age = 0.1;
        let mut sim = Simulation::new_direct(star, user, bad, "kraken", alloc, 0);
        let sim_id = sims.create(&mut sim).unwrap();

        dep.daemon.run_until_settled(&dep.grid, 48.0);

        let admin = dep.db.connect(amp_core::roles::ROLE_ADMIN).unwrap();
        let asims = Manager::<Simulation>::new(admin.clone());
        let held = asims.get(sim_id).unwrap();
        assert_eq!(held.status, SimStatus::Hold);
        assert_eq!(held.held_from.as_deref(), Some("RUNNING"));
        assert!(held.status_message.contains("model failure"));

        // both parties notified
        let notes = Manager::<Notification>::new(admin.clone()).all().unwrap();
        assert!(notes.iter().any(|n| n.user_id == Some(user)));
        assert!(notes.iter().any(|n| n.user_id.is_none()));

        // an admin "fixes the model" (here: fixes the parameters) and resumes
        let mut fixed = asims.get(sim_id).unwrap();
        fixed.payload_json = serde_json::to_string(&amp_core::SimPayload::Direct {
            params: serde_json::to_value(&StellarParams::benchmark()),
        })
        .unwrap();
        asims.save(&fixed).unwrap();
        // also clear the failed work job so the workflow resubmits
        let jobs = Manager::<amp_core::models::GridJobRecord>::new(admin.clone());
        for j in jobs
            .filter(&Query::new().eq("simulation_id", sim_id))
            .unwrap()
        {
            if j.purpose == JobPurpose::Work {
                jobs.delete(j.id.unwrap()).unwrap();
            }
        }
        let resumed_to = dep.daemon.resume_from_hold(sim_id).unwrap();
        assert_eq!(resumed_to, SimStatus::Running);

        dep.daemon.run_until_settled(&dep.grid, 48.0);
        assert_eq!(asims.get(sim_id).unwrap().status, SimStatus::Done);
    }

    #[test]
    fn every_transition_mail_mode() {
        let mut dep = deploy(kraken(), fast_config(), None).unwrap();
        let (user, star, alloc, _obs) = seed_fixtures(&dep.db, "kraken", &truth(), 6).unwrap();
        // flip the owner to every-transition mode
        let admin = dep.db.connect(amp_core::roles::ROLE_ADMIN).unwrap();
        let users = Manager::<amp_core::models::AmpUser>::new(admin.clone());
        let mut u = users.get(user).unwrap();
        u.notify_mode = NotifyMode::EveryTransition;
        users.save(&u).unwrap();

        let sim_id = submit_direct(&dep, star, user, alloc);
        dep.daemon.run_until_settled(&dep.grid, 48.0);

        let notes = Manager::<Notification>::new(admin).all().unwrap();
        let mails: Vec<_> = notes
            .iter()
            .filter(|n| n.user_id == Some(user) && n.simulation_id == Some(sim_id))
            .collect();
        // five transitions: QUEUED->PREJOB->RUNNING->POSTJOB->CLEANUP->DONE
        assert_eq!(mails.len(), 5, "{mails:#?}");
    }

    #[test]
    fn daemon_heartbeat_monitoring() {
        let mut dep = deploy(kraken(), fast_config(), None).unwrap();
        let monitor = DaemonMonitor {
            max_silence_secs: 3600,
        };
        assert!(!monitor.healthy(&dep.daemon, 0), "no heartbeat yet");
        dep.daemon.tick(&dep.grid);
        assert!(monitor.healthy(&dep.daemon, dep.grid.now().as_secs() as i64));
        // daemon "crashes": no ticks while time passes
        dep.grid.advance(SimDuration::from_hours(2.0));
        assert!(!monitor.healthy(&dep.daemon, dep.grid.now().as_secs() as i64));
    }

    #[test]
    fn audit_log_attributes_jobs_to_gateway_users() {
        let mut dep = deploy(kraken(), fast_config(), None).unwrap();
        let (user, star, alloc, _obs) = seed_fixtures(&dep.db, "kraken", &truth(), 8).unwrap();
        let _sim_id = submit_direct(&dep, star, user, alloc);
        dep.daemon.run_until_settled(&dep.grid, 48.0);

        let audit = dep.grid.audit();
        assert!(audit.fully_attributed());
        assert!(audit.by_user("astro1").count() >= 4, "submits + transfers");
    }

    #[test]
    fn ops_log_records_copy_pasteable_command_lines() {
        let mut dep = deploy(kraken(), fast_config(), None).unwrap();
        let (user, star, alloc, _obs) = seed_fixtures(&dep.db, "kraken", &truth(), 12).unwrap();
        // a GridFTP-only outage early on to produce a highlighted failure
        dep.grid
            .faults
            .add_outage("kraken", Service::GridFtp, SimTime(0), SimTime(1800));
        let _sim = submit_direct(&dep, star, user, alloc);
        dep.daemon.run_until_settled(&dep.grid, 48.0);

        let log = dep.daemon.ops_log();
        assert!(!log.is_empty());
        // every entry is a pasteable Globus CLI line
        for e in log.entries() {
            assert!(
                e.command.starts_with("globusrun")
                    || e.command.starts_with("globus-url-copy")
                    || e.command.starts_with("globus-job-status"),
                "{}",
                e.command
            );
        }
        // the outage produced highlighted transient entries with the exact
        // command to retry
        let failures: Vec<_> = log.failures().collect();
        assert!(!failures.is_empty());
        assert!(failures
            .iter()
            .any(|e| matches!(e.outcome, OpOutcome::Transient(_))));
        let tail = log.render_tail(log.len());
        assert!(tail.contains("WARN"));
        assert!(tail.contains("$ globus"));
        // successful submissions carry full RSL
        assert!(log
            .entries()
            .any(|e| e.command.contains("jobmanager-fork") && !e.is_failure()));
        assert!(log
            .entries()
            .any(|e| e.command.contains("(executable=/amp/bin/astec)")));
    }

    #[test]
    fn direct_sim_kind_recorded() {
        let dep = deploy(kraken(), fast_config(), None).unwrap();
        let (user, star, alloc, _obs) = seed_fixtures(&dep.db, "kraken", &truth(), 9).unwrap();
        let sim_id = submit_direct(&dep, star, user, alloc);
        let admin = dep.db.connect(amp_core::roles::ROLE_ADMIN).unwrap();
        let sim = Manager::<Simulation>::new(admin).get(sim_id).unwrap();
        assert_eq!(sim.kind, SimKind::Direct);
    }
}
