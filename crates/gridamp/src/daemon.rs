//! The GridAMP daemon process.
//!
//! §4.4: the daemon "reads simulation information from the centralized
//! database, performs the necessary grid client actions, and updates the
//! database accordingly". Each tick it (1) polls the status of every grid
//! job generically — "no special callbacks or processing are performed as
//! part of the grid job status update procedure" — then (2) steps each
//! simulation's workflow from its last-known job statuses, and (3) handles
//! the failure taxonomy: silent retry for transients, HOLD + notification
//! for model failures, and an externally monitored heartbeat for daemon
//! failures.

use std::collections::HashMap;

use amp_core::models::{AmpUser, GridJobRecord, Notification, NotifyMode, Simulation};
use amp_core::status::{JobStatus, SimStatus};
use amp_grid::{CommunityCredential, GramJobHandle, GramState, Grid, SimDuration};
use amp_simdb::orm::Manager;
use amp_simdb::{Connection, Db, DbError, Op, Query, Value};

use crate::clilog::{gram_status_cmdline, OpOutcome, OpsEntry, OpsLog};
use crate::error::WorkflowError;
use crate::workflow::{owner_username, step, DaemonConfig, StageCtx};

/// Summary of one daemon tick.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TickReport {
    pub jobs_polled: usize,
    pub job_transitions: usize,
    pub sims_stepped: usize,
    /// (simulation id, from, to) workflow transitions this tick.
    pub transitions: Vec<(i64, SimStatus, SimStatus)>,
    pub transient_errors: usize,
    pub new_holds: usize,
    /// Daemon-class failures (surfaced to the external monitor).
    pub daemon_errors: Vec<String>,
}

/// The workflow daemon.
pub struct GridAmp {
    db: Db,
    conn: Connection,
    pub config: DaemonConfig,
    cred: CommunityCredential,
    /// Consecutive transient-failure count per simulation.
    transient_streak: HashMap<i64, u32>,
    /// Simulated time of the last completed tick (heartbeat).
    pub last_heartbeat: Option<i64>,
    /// §4.4: the command-line transparency log.
    ops_log: OpsLog,
}

impl GridAmp {
    /// Connect to the central database with the daemon role.
    pub fn new(db: &Db, config: DaemonConfig) -> Result<Self, DbError> {
        let conn = db.connect(amp_core::roles::ROLE_DAEMON)?;
        Ok(GridAmp {
            db: db.clone(),
            conn,
            config,
            cred: CommunityCredential::new("/C=US/O=NCAR/CN=amp community"),
            transient_streak: HashMap::new(),
            last_heartbeat: None,
            ops_log: OpsLog::new(),
        })
    }

    /// The operations log: every grid call with its Globus-CLI-equivalent
    /// command line, failures highlighted (§4.4).
    pub fn ops_log(&self) -> &OpsLog {
        &self.ops_log
    }

    /// The community credential (so tests/benches can authorize sites).
    pub fn credential(&self) -> &CommunityCredential {
        &self.cred
    }

    pub fn db(&self) -> &Db {
        &self.db
    }

    fn sims(&self) -> Manager<Simulation> {
        Manager::new(self.conn.clone())
    }

    fn jobs(&self) -> Manager<GridJobRecord> {
        Manager::new(self.conn.clone())
    }

    fn notifications(&self) -> Manager<Notification> {
        Manager::new(self.conn.clone())
    }

    fn notify_user(&self, sim: &Simulation, subject: &str, body: &str, now: i64) {
        let mut n = Notification::to_user(sim.owner_id, sim.id, subject, body, now);
        let _ = self.notifications().create(&mut n);
    }

    fn notify_admins(&self, sim_id: Option<i64>, subject: &str, body: &str, now: i64) {
        let mut n = Notification::to_admins(sim_id, subject, body, now);
        let _ = self.notifications().create(&mut n);
    }

    /// One daemon cycle.
    pub fn tick(&mut self, grid: &mut Grid) -> TickReport {
        let mut report = TickReport::default();
        self.poll_jobs(grid, &mut report);
        self.step_simulations(grid, &mut report);
        self.last_heartbeat = Some(grid.now().as_secs() as i64);
        report
    }

    /// Phase 1: generic grid-job status update (identical for all jobs
    /// "regardless of purpose or execution method", §4.4).
    fn poll_jobs(&mut self, grid: &mut Grid, report: &mut TickReport) {
        let pending = match self.jobs().filter(&Query::new().filter(
            "status",
            Op::In(vec![
                Value::Text(JobStatus::Pending.as_str().into()),
                Value::Text(JobStatus::Active.as_str().into()),
            ]),
            Value::Null,
        )) {
            Ok(v) => v,
            Err(e) => {
                report.daemon_errors.push(e.to_string());
                return;
            }
        };
        let now = grid.now();
        for mut job in pending {
            let Some(handle_str) = job.gram_handle.clone() else {
                continue;
            };
            let handle = GramJobHandle(handle_str);
            let username = self
                .sims()
                .get(job.simulation_id)
                .ok()
                .and_then(|s| owner_username(&self.conn, &s).ok())
                .unwrap_or_else(|| "amp-gateway".to_string());
            let proxy = self.cred.issue_proxy(
                &username,
                now,
                SimDuration::from_hours(self.config.proxy_lifetime_hours),
            );
            report.jobs_polled += 1;
            match grid.gram_status(&job.site, &proxy, &handle) {
                Ok(state) => {
                    let new_status = match &state {
                        GramState::Pending => JobStatus::Pending,
                        GramState::Active => JobStatus::Active,
                        GramState::Done => JobStatus::Done,
                        GramState::Failed(m) => {
                            job.detail = m.clone();
                            JobStatus::Failed
                        }
                    };
                    if new_status != job.status {
                        job.status = new_status;
                        if let Some(times) = grid.job_times(&job.site, &handle) {
                            job.started_at = times.started_at.map(|t| t.as_secs() as i64);
                            job.ended_at = times.ended_at.map(|t| t.as_secs() as i64);
                        }
                        if self.jobs().save(&job).is_ok() {
                            report.job_transitions += 1;
                        }
                    }
                }
                Err(e) if e.is_transient() => {
                    report.transient_errors += 1;
                    // Anticipated transient: administrators notified, the
                    // user-visible display annotated, processing retried.
                    self.ops_log.record(OpsEntry {
                        at: now.as_secs() as i64,
                        simulation_id: Some(job.simulation_id),
                        command: gram_status_cmdline(&handle.0),
                        outcome: OpOutcome::Transient(e.to_string()),
                    });
                    job.detail = format!("transient: {e}");
                    let _ = self.jobs().save(&job);
                }
                Err(e) => {
                    job.status = JobStatus::Failed;
                    job.detail = e.to_string();
                    let _ = self.jobs().save(&job);
                    report.job_transitions += 1;
                }
            }
        }
    }

    /// Phase 2: step every live simulation's workflow.
    fn step_simulations(&mut self, grid: &mut Grid, report: &mut TickReport) {
        let live = match self.sims().filter(&Query::new().filter(
            "status",
            Op::In(
                SimStatus::happy_path()
                    .iter()
                    .filter(|s| !s.is_terminal())
                    .map(|s| Value::Text(s.as_str().into()))
                    .collect(),
            ),
            Value::Null,
        )) {
            Ok(v) => v,
            Err(e) => {
                report.daemon_errors.push(e.to_string());
                return;
            }
        };

        for mut sim in live {
            let sim_id = sim.id.expect("saved sim");
            report.sims_stepped += 1;
            let username = match owner_username(&self.conn, &sim) {
                Ok(u) => u,
                Err(e) => {
                    report.daemon_errors.push(e.to_string());
                    continue;
                }
            };
            let from = sim.status;
            let outcome = {
                let mut ctx = StageCtx {
                    grid,
                    conn: &self.conn,
                    config: &self.config,
                    cred: &self.cred,
                    sim: &mut sim,
                    owner_username: username,
                    ops: &mut self.ops_log,
                };
                step(&mut ctx)
            };
            let now = grid.now().as_secs() as i64;
            match outcome {
                Ok(Some(next)) => {
                    self.transient_streak.remove(&sim_id);
                    sim.status_message.clear();
                    if self.sims().save(&sim).is_err() {
                        continue;
                    }
                    report.transitions.push((sim_id, from, next));
                    self.send_transition_mail(&sim, from, next, now);
                }
                Ok(None) => {
                    self.transient_streak.remove(&sim_id);
                    let _ = self.sims().save(&sim);
                }
                Err(WorkflowError::Transient(msg)) => {
                    report.transient_errors += 1;
                    let streak = {
                        let s = self.transient_streak.entry(sim_id).or_insert(0);
                        *s += 1;
                        *s
                    };
                    // Silent for users; a plain-text note on the status
                    // display and an admin notification on first sight.
                    sim.status_message = msg.clone();
                    let _ = self.sims().save(&sim);
                    if streak == 1 {
                        self.notify_admins(
                            Some(sim_id),
                            "transient grid failure",
                            &msg,
                            now,
                        );
                    }
                    if streak > self.config.max_transient_retries {
                        self.hold(&mut sim, &format!("transient storm: {msg}"), now, report);
                    }
                }
                Err(WorkflowError::ModelFailure(msg)) => {
                    self.hold(&mut sim, &msg, now, report);
                }
                Err(WorkflowError::Daemon(msg)) => {
                    report.daemon_errors.push(format!("sim {sim_id}: {msg}"));
                }
            }
        }
    }

    /// Park a simulation in the hold state (§4.4 model-failure handling).
    fn hold(&mut self, sim: &mut Simulation, msg: &str, now: i64, report: &mut TickReport) {
        sim.held_from = Some(sim.status.as_str().to_string());
        sim.status = SimStatus::Hold;
        sim.status_message = msg.to_string();
        if self.sims().save(sim).is_ok() {
            report.new_holds += 1;
            let sim_id = sim.id.expect("saved");
            self.transient_streak.remove(&sim_id);
            self.notify_user(
                sim,
                "simulation needs attention",
                "Your simulation hit a processing problem; AMP staff are investigating.",
                now,
            );
            self.notify_admins(Some(sim_id), "model failure (HOLD)", msg, now);
        }
    }

    /// Administrator action: resume a held simulation from the state it
    /// was in ("once the problem has been resolved, the workflow resumes
    /// automatically", §4.4).
    pub fn resume_from_hold(&mut self, sim_id: i64) -> Result<SimStatus, DbError> {
        let mut sim = self.sims().get(sim_id)?;
        if sim.status != SimStatus::Hold {
            return Err(DbError::Schema(format!(
                "simulation {sim_id} is not held (status {})",
                sim.status
            )));
        }
        let resume_to: SimStatus = sim
            .held_from
            .as_deref()
            .and_then(|s| s.parse().ok())
            .unwrap_or(SimStatus::Queued);
        sim.status = resume_to;
        sim.held_from = None;
        sim.status_message = "resumed by administrator".to_string();
        self.sims().save(&sim)?;
        Ok(resume_to)
    }

    fn send_transition_mail(&self, sim: &Simulation, from: SimStatus, to: SimStatus, now: i64) {
        let users = Manager::<AmpUser>::new(self.conn.clone());
        let Ok(owner) = users.get(sim.owner_id) else {
            return;
        };
        match owner.notify_mode {
            NotifyMode::None => {}
            NotifyMode::OnCompletion => {
                if to == SimStatus::Done {
                    self.notify_user(
                        sim,
                        "simulation complete",
                        "Your AMP simulation has completed; results are on the website.",
                        now,
                    );
                }
            }
            NotifyMode::EveryTransition => {
                self.notify_user(
                    sim,
                    &format!("simulation {from} -> {to}"),
                    &format!("Your AMP simulation moved from {from} to {to}."),
                    now,
                );
            }
        }
    }

    /// Convenience driver: tick, advance simulated time by the poll
    /// interval, repeat — until every simulation is terminal (DONE or
    /// HOLD) or `max_sim_hours` of simulated time elapse. Returns the
    /// number of ticks executed.
    pub fn run_until_settled(&mut self, grid: &mut Grid, max_sim_hours: f64) -> usize {
        let deadline = grid.now() + SimDuration::from_hours(max_sim_hours);
        let mut ticks = 0;
        loop {
            self.tick(grid);
            ticks += 1;
            let all_settled = self
                .sims()
                .all()
                .map(|sims| {
                    sims.iter().all(|s| {
                        matches!(s.status, SimStatus::Done | SimStatus::Hold)
                    })
                })
                .unwrap_or(true);
            if all_settled || grid.now() >= deadline {
                return ticks;
            }
            grid.advance(SimDuration::from_secs(self.config.poll_interval_secs));
        }
    }
}

/// The external daemon monitor (§4.4: "failures of the GridAMP daemon
/// itself are monitored externally and immediately brought to the
/// attention of the gateway administrators").
pub struct DaemonMonitor {
    /// Longest acceptable heartbeat silence, simulated seconds.
    pub max_silence_secs: i64,
}

impl DaemonMonitor {
    /// True if the daemon looks alive at `now`.
    pub fn healthy(&self, daemon: &GridAmp, now: i64) -> bool {
        match daemon.last_heartbeat {
            Some(hb) => now - hb <= self.max_silence_secs,
            None => false,
        }
    }
}
