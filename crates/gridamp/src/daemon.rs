//! The GridAMP daemon process.
//!
//! §4.4: the daemon "reads simulation information from the centralized
//! database, performs the necessary grid client actions, and updates the
//! database accordingly". Each tick it (1) polls the status of every grid
//! job generically — "no special callbacks or processing are performed as
//! part of the grid job status update procedure" — then (2) steps each
//! simulation's workflow from its last-known job statuses, and (3) handles
//! the failure taxonomy: silent retry for transients, HOLD + notification
//! for model failures, and an externally monitored heartbeat for daemon
//! failures.
//!
//! ## Parallel ticks
//!
//! With [`DaemonConfig::workers`] > 1 both tick phases shard across a
//! worker pool. The sharding rule is **per-simulation ownership**: a
//! simulation — and every job record belonging to it — is handled by
//! exactly one worker per tick (`simulation_id % workers`), so no two
//! threads ever race on the same rows. Each worker drives grid client
//! calls against the shared [`Grid`] (which synchronizes internally on
//! per-site locks) through its own database [`Connection`], and produces
//! its own partial [`TickReport`] plus an ops-log segment. After the
//! workers join, outcomes are applied and reports merged in simulation-id
//! order ([`merge_reports`]), so notifications, holds and the
//! transient-streak accounting happen in exactly the order the sequential
//! daemon produces. `workers == 1` bypasses the pool entirely and runs
//! the legacy sequential loop.

use std::collections::HashMap;

use amp_core::models::{AmpUser, GridJobRecord, Lease, Notification, NotifyMode, Simulation};
use amp_core::status::{JobStatus, SimStatus};
use amp_grid::{CommunityCredential, GramJobHandle, GramState, Grid, SimDuration, SimTime};
use amp_simdb::orm::{Manager, Model};
use amp_simdb::{Connection, Db, DbError, Op, Query, Value};

use crate::clilog::{gram_status_cmdline, OpOutcome, OpsEntry, OpsLog};
use crate::error::WorkflowError;
use crate::lease::{self, ClaimOutcome};
use crate::workflow::{owner_username, step, DaemonConfig, StageCtx};

/// Daemon-wide metric handles (global registry, resolved once). The
/// per-state transition and per-site poll series are labelled, so those
/// go through the registry at the call site; everything with a fixed name
/// lives here.
struct DaemonMetrics {
    job_transitions: amp_obs::Counter,
    transient_retries: amp_obs::Counter,
    backoffs: amp_obs::Counter,
    holds: amp_obs::Counter,
    errors: amp_obs::Counter,
    lease_claims: amp_obs::Counter,
    lease_renewals: amp_obs::Counter,
    lease_takeovers: amp_obs::Counter,
    lease_losses: amp_obs::Counter,
}

fn obs_metrics() -> &'static DaemonMetrics {
    static METRICS: std::sync::OnceLock<DaemonMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| DaemonMetrics {
        job_transitions: amp_obs::counter("daemon_job_transitions_total"),
        transient_retries: amp_obs::counter("daemon_transient_retries_total"),
        backoffs: amp_obs::counter("daemon_backoffs_total"),
        holds: amp_obs::counter("daemon_holds_total"),
        errors: amp_obs::counter("daemon_errors_total"),
        lease_claims: amp_obs::counter("daemon_lease_claims_total"),
        lease_renewals: amp_obs::counter("daemon_lease_renewals_total"),
        lease_takeovers: amp_obs::counter("daemon_lease_takeovers_total"),
        lease_losses: amp_obs::counter("daemon_lease_losses_total"),
    })
}

/// Opt-in per-tick profile of the sequential engine, for scalability
/// reporting: the measured service time of every phase-1 poll and every
/// phase-2 step, keyed by owning simulation, plus the whole tick's wall
/// time. With these a bench can replay the parallel engine's sharding
/// rule (`simulation_id % workers`) and compute the critical-path tick
/// time a multi-core host would see — the only faithful way to report
/// the pool's speedup from a single-core CI box. Only the sequential
/// engine fills this in (`workers == 1`); its measurements are
/// interleaving-free.
#[derive(Debug, Clone, Default)]
pub struct TickProfile {
    /// (simulation id, service time) of each phase-1 job poll.
    pub poll_items: Vec<(i64, std::time::Duration)>,
    /// (simulation id, service time) of each phase-2 workflow step,
    /// outcome application (the row save the pool also shards) included.
    pub step_items: Vec<(i64, std::time::Duration)>,
    /// Wall time of the whole tick (item work + serial bookkeeping).
    pub total: std::time::Duration,
}

/// Summary of one daemon tick.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TickReport {
    pub jobs_polled: usize,
    pub job_transitions: usize,
    pub sims_stepped: usize,
    /// (simulation id, from, to) workflow transitions this tick.
    pub transitions: Vec<(i64, SimStatus, SimStatus)>,
    pub transient_errors: usize,
    pub new_holds: usize,
    /// Daemon-class failures (surfaced to the external monitor).
    pub daemon_errors: Vec<String>,
}

/// Merge per-worker tick reports into one tick summary: counts are
/// summed, transitions are ordered by simulation id, and daemon errors
/// are sorted. Commutative and lossless — any permutation of the same
/// parts merges to the same report, and nothing is dropped.
pub fn merge_reports<I: IntoIterator<Item = TickReport>>(parts: I) -> TickReport {
    let mut merged = TickReport::default();
    for part in parts {
        merged.jobs_polled += part.jobs_polled;
        merged.job_transitions += part.job_transitions;
        merged.sims_stepped += part.sims_stepped;
        merged.transient_errors += part.transient_errors;
        merged.new_holds += part.new_holds;
        merged.transitions.extend(part.transitions);
        merged.daemon_errors.extend(part.daemon_errors);
    }
    merged
        .transitions
        .sort_by(|a, b| (a.0, a.1.as_str(), a.2.as_str()).cmp(&(b.0, b.1.as_str(), b.2.as_str())));
    merged.daemon_errors.sort();
    merged
}

/// Outcome of polling one job record (phase 1).
struct PollOutcome {
    polled: bool,
    transitioned: bool,
    transient: bool,
    ops: Option<OpsEntry>,
}

/// Poll one job's GRAM status — the §4.4 generic status update, identical
/// for all jobs "regardless of purpose or execution method". Shared
/// verbatim by the sequential and parallel paths so their per-job behavior
/// cannot drift.
///
/// Dirtied rows are *not* saved here: they are pushed onto `dirty`, and
/// the caller commits the whole phase's rows as **one transaction** (one
/// WAL batch, one durability flush) via [`commit_job_batch`] — the tick
/// commit path's group write. The old shape paid one durable commit per
/// transitioned job.
fn poll_job_once(
    conn: &Connection,
    grid: &Grid,
    config: &DaemonConfig,
    cred: &CommunityCredential,
    job: &mut GridJobRecord,
    now: SimTime,
    dirty: &mut Vec<GridJobRecord>,
) -> PollOutcome {
    let mut outcome = PollOutcome {
        polled: false,
        transitioned: false,
        transient: false,
        ops: None,
    };
    let Some(handle_str) = job.gram_handle.clone() else {
        return outcome;
    };
    let handle = GramJobHandle(handle_str);
    let username = Manager::<Simulation>::new(conn.clone())
        .get(job.simulation_id)
        .ok()
        .and_then(|s| owner_username(conn, &s).ok())
        .unwrap_or_else(|| "amp-gateway".to_string());
    let proxy = cred.issue_proxy(
        &username,
        now,
        SimDuration::from_hours(config.proxy_lifetime_hours),
    );
    outcome.polled = true;
    let poll_timer = std::time::Instant::now();
    let status = grid.gram_status(&job.site, &proxy, &handle);
    amp_obs::registry()
        .histogram(
            &amp_obs::labeled("daemon_gram_poll_seconds", &[("site", &job.site)]),
            amp_obs::Unit::Seconds,
        )
        .observe_duration(poll_timer.elapsed());
    match status {
        Ok(state) => {
            let new_status = match &state {
                GramState::Pending => JobStatus::Pending,
                GramState::Active => JobStatus::Active,
                GramState::Done => JobStatus::Done,
                GramState::Failed(m) => {
                    job.detail = m.clone();
                    JobStatus::Failed
                }
            };
            if new_status != job.status {
                job.status = new_status;
                if let Some(times) = grid.job_times(&job.site, &handle) {
                    job.started_at = times.started_at.map(|t| t.as_secs() as i64);
                    job.ended_at = times.ended_at.map(|t| t.as_secs() as i64);
                }
                dirty.push(job.clone());
                outcome.transitioned = true;
                obs_metrics().job_transitions.inc();
            }
        }
        Err(e) if e.is_transient() => {
            outcome.transient = true;
            amp_obs::flight().record(
                "grid_fault",
                format!(
                    "t={} site {} sim {}: {e}",
                    now.as_secs(),
                    job.site,
                    job.simulation_id
                ),
            );
            // Anticipated transient: administrators notified, the
            // user-visible display annotated, processing retried.
            outcome.ops = Some(OpsEntry {
                at: now.as_secs() as i64,
                simulation_id: Some(job.simulation_id),
                command: gram_status_cmdline(&handle.0),
                outcome: OpOutcome::Transient(e.to_string()),
            });
            job.detail = format!("transient: {e}");
            dirty.push(job.clone());
        }
        Err(e) => {
            job.status = JobStatus::Failed;
            job.detail = e.to_string();
            dirty.push(job.clone());
            outcome.transitioned = true;
        }
    }
    outcome
}

/// Commit a phase's dirtied job rows as one database transaction: one WAL
/// batch, one durability point, regardless of how many jobs transitioned
/// this tick. Rows are per-job disjoint (each job is polled at most once
/// per tick), so folding them into a single commit changes durability
/// granularity only — a crash loses at most one tick's poll results, which
/// the next tick's poll re-derives from GRAM.
fn commit_job_batch(conn: &Connection, batch: &[GridJobRecord]) -> Result<(), DbError> {
    if batch.is_empty() {
        return Ok(());
    }
    conn.transaction(&[GridJobRecord::TABLE], |tx| {
        for job in batch {
            let id = job.id().expect("polled jobs are persisted rows");
            tx.update(GridJobRecord::TABLE, id, &job.to_values())?;
        }
        Ok(())
    })
}

/// Run one simulation's workflow step (phase 2), recording grid calls in
/// `ops`. Returns the step outcome, or `Err(message)` when the owner
/// lookup fails (a daemon-class error). Shared by both tick paths.
#[allow(clippy::type_complexity)]
fn step_sim_once(
    conn: &Connection,
    grid: &Grid,
    config: &DaemonConfig,
    cred: &CommunityCredential,
    sim: &mut Simulation,
    ops: &mut OpsLog,
    lease_epoch: Option<i64>,
) -> Result<Result<Option<SimStatus>, WorkflowError>, String> {
    let username = owner_username(conn, sim).map_err(|e| e.to_string())?;
    let mut ctx = StageCtx {
        grid,
        conn,
        config,
        cred,
        sim,
        owner_username: username,
        ops,
        lease_epoch,
    };
    Ok(step(&mut ctx))
}

/// One worker's phase-2 product for one simulation, applied post-barrier
/// on the daemon thread in simulation-id order.
struct StepProduct {
    idx: usize,
    worker: usize,
    sim: Simulation,
    from: SimStatus,
    outcome: Result<Result<Option<SimStatus>, WorkflowError>, String>,
    ops: OpsLog,
    /// `Some(save result)` when the worker already persisted the stepped
    /// simulation row (Ok outcomes only — the row belongs to this worker,
    /// and saves of distinct rows commute, so doing them in the pool
    /// keeps the post-barrier serial section small). `None` means the
    /// merge step must save.
    pre_saved: Option<bool>,
}

/// The workflow daemon.
pub struct GridAmp {
    db: Db,
    conn: Connection,
    pub config: DaemonConfig,
    cred: CommunityCredential,
    /// Consecutive transient-failure count per simulation.
    transient_streak: HashMap<i64, u32>,
    /// Ticks executed so far (drives the transient backoff schedule).
    ticks: u64,
    /// Earliest tick at which a backed-off simulation is retried.
    next_attempt: HashMap<i64, u64>,
    /// Simulated time of the last completed tick (heartbeat).
    pub last_heartbeat: Option<i64>,
    /// §4.4: the command-line transparency log.
    ops_log: OpsLog,
    /// Set to `Some` to profile sequential ticks (see [`TickProfile`]);
    /// refreshed on every tick while enabled.
    pub profile: Option<TickProfile>,
    /// Simulations this daemon currently holds leases on, with the held
    /// epoch — rebuilt by the claim phase of every tick. Both work phases
    /// step only owned simulations.
    owned: HashMap<i64, i64>,
    /// Clock-skew fault injection: offset (simulated seconds) added to
    /// this daemon's view of the clock for lease accounting. A daemon
    /// running fast sees peers' leases expire early and attempts takeovers
    /// the epoch fencing must absorb.
    pub clock_skew_secs: i64,
    /// Chaos-test instrumentation: invoked after the lease-claim phase and
    /// before any work phase. A harness can park the daemon here —
    /// simulating a GC-style stop-the-world pause — while peers take over
    /// its leases, then let it resume into the fencing guards.
    pub pause_point: Option<Box<dyn FnMut() + Send>>,
}

impl GridAmp {
    /// Connect to the central database with the daemon role.
    pub fn new(db: &Db, config: DaemonConfig) -> Result<Self, DbError> {
        let conn = db.connect(amp_core::roles::ROLE_DAEMON)?;
        Ok(GridAmp {
            db: db.clone(),
            conn,
            config,
            cred: CommunityCredential::new("/C=US/O=NCAR/CN=amp community"),
            transient_streak: HashMap::new(),
            ticks: 0,
            next_attempt: HashMap::new(),
            last_heartbeat: None,
            ops_log: OpsLog::new(),
            profile: None,
            owned: HashMap::new(),
            clock_skew_secs: 0,
            pause_point: None,
        })
    }

    /// This daemon's identity in the lease table.
    pub fn daemon_id(&self) -> &str {
        &self.config.daemon_id
    }

    /// The simulations this daemon owned as of its last claim phase.
    pub fn owned_sims(&self) -> Vec<i64> {
        let mut ids: Vec<i64> = self.owned.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// All lease rows currently naming this daemon as holder — the
    /// monitor's view, read from the database rather than from in-memory
    /// state, so it stays truthful across restarts.
    pub fn held_leases(&self) -> Result<Vec<Lease>, DbError> {
        lease::held_by(&self.conn, &self.config.daemon_id)
    }

    /// The operations log: every grid call with its Globus-CLI-equivalent
    /// command line, failures highlighted (§4.4).
    pub fn ops_log(&self) -> &OpsLog {
        &self.ops_log
    }

    /// The community credential (so tests/benches can authorize sites).
    pub fn credential(&self) -> &CommunityCredential {
        &self.cred
    }

    pub fn db(&self) -> &Db {
        &self.db
    }

    fn sims(&self) -> Manager<Simulation> {
        Manager::new(self.conn.clone())
    }

    fn jobs(&self) -> Manager<GridJobRecord> {
        Manager::new(self.conn.clone())
    }

    fn notifications(&self) -> Manager<Notification> {
        Manager::new(self.conn.clone())
    }

    fn notify_user(&self, sim: &Simulation, subject: &str, body: &str, now: i64) {
        let mut n = Notification::to_user(sim.owner_id, sim.id, subject, body, now);
        let _ = self.notifications().create(&mut n);
    }

    fn notify_admins(&self, sim_id: Option<i64>, subject: &str, body: &str, now: i64) {
        let mut n = Notification::to_admins(sim_id, subject, body, now);
        let _ = self.notifications().create(&mut n);
    }

    /// Lease-claim phase: walk the live simulations and claim, renew, or
    /// take over each one's lease. Rebuilds the ownership map both work
    /// phases filter on.
    fn claim_leases(&mut self, grid: &Grid, report: &mut TickReport) {
        let live = match self.live_sims() {
            Ok(v) => v,
            Err(e) => {
                report.daemon_errors.push(e.to_string());
                return;
            }
        };
        // The daemon's own (possibly skewed) clock drives lease expiry.
        let now = grid.now().as_secs() as i64 + self.clock_skew_secs;
        let ttl = self.config.lease_ttl_secs;
        let mut owned = HashMap::with_capacity(live.len());
        for (sim_id, app) in live {
            match lease::claim(&self.conn, &self.config.daemon_id, sim_id, &app, now, ttl) {
                Ok(outcome) => {
                    match &outcome {
                        ClaimOutcome::Claimed { .. } => obs_metrics().lease_claims.inc(),
                        ClaimOutcome::Renewed { .. } => obs_metrics().lease_renewals.inc(),
                        ClaimOutcome::TakenOver { epoch, from } => {
                            obs_metrics().lease_takeovers.inc();
                            amp_obs::flight().record(
                                "lease_takeover",
                                format!(
                                    "t={now} sim {sim_id}: {} -> {} (epoch {epoch})",
                                    from, self.config.daemon_id
                                ),
                            );
                        }
                        ClaimOutcome::Lost => obs_metrics().lease_losses.inc(),
                        ClaimOutcome::Held { .. } => {}
                    }
                    if let Some(epoch) = outcome.held_epoch() {
                        owned.insert(sim_id, epoch);
                    }
                }
                Err(e) => report
                    .daemon_errors
                    .push(format!("lease claim sim {sim_id}: {e}")),
            }
        }
        self.owned = owned;
    }

    /// Drop our lease on a settled (DONE or HOLD) simulation. Advisory —
    /// expiry would clean up anyway — but keeps the lease table equal to
    /// the live working set.
    fn release_lease(&mut self, sim_id: i64) {
        self.owned.remove(&sim_id);
        let _ = lease::release(&self.conn, &self.config.daemon_id, sim_id);
    }

    /// One daemon cycle.
    pub fn tick(&mut self, grid: &Grid) -> TickReport {
        self.ticks += 1;
        let mut claim_report = TickReport::default();
        self.claim_leases(grid, &mut claim_report);
        if let Some(hook) = self.pause_point.as_mut() {
            hook();
        }
        let report = if self.config.workers > 1 {
            self.tick_parallel(grid, self.config.workers)
        } else {
            let started = self.profile.as_mut().map(|p| {
                *p = TickProfile::default();
                std::time::Instant::now()
            });
            let mut report = TickReport::default();
            self.poll_jobs(grid, &mut report);
            self.step_simulations(grid, &mut report);
            if let (Some(t), Some(p)) = (started, self.profile.as_mut()) {
                p.total = t.elapsed();
            }
            report
        };
        let report = merge_reports([claim_report, report]);
        self.last_heartbeat = Some(grid.now().as_secs() as i64 + self.clock_skew_secs);
        // Daemon-class errors are the flight recorder's reason to exist:
        // count them and leave a breadcrumb trail for the failure dump.
        let now = grid.now().as_secs();
        for msg in &report.daemon_errors {
            obs_metrics().errors.inc();
            amp_obs::flight().record("daemon_error", format!("t={now}: {msg}"));
        }
        report
    }

    /// Phase 1's worklist: `(job id, owning simulation id)` of every
    /// pending/active job record, in primary-key order. A single
    /// `Op::In` projection: the planner unions the status-index postings
    /// for both values, so the ever-growing job table is never scanned
    /// and the result comes back already id-ordered. No row bodies are
    /// cloned or decoded here — each engine fetches a job's row inside
    /// the per-item work, which the pool shards.
    ///
    /// The worklist is built through a read view pinning both the job and
    /// simulation tables: the `(job, owning sim)` pairs are one coherent
    /// snapshot — a multi-table transaction (e.g. cancel: sim + its jobs)
    /// is either entirely visible to this tick or not at all. The view is
    /// a lock-free MVCC pin: holding it never stalls the pool's engines
    /// writing job status, no matter how long the tick takes.
    fn pending_job_ids(&self) -> Result<Vec<(i64, i64)>, DbError> {
        let statuses = vec![
            Value::from(JobStatus::Pending.as_str()),
            Value::from(JobStatus::Active.as_str()),
        ];
        let view = self
            .conn
            .read_view(&[GridJobRecord::TABLE, Simulation::TABLE])?;
        Ok(view
            .select_project(
                GridJobRecord::TABLE,
                &Query::new().filter("status", Op::In(statuses), Value::Null),
                "simulation_id",
            )?
            .into_iter()
            .filter_map(|(job_id, owner)| match owner {
                Value::Int(sim_id) => Some((job_id, sim_id)),
                _ => None,
            })
            .collect())
    }

    /// Phase 2's worklist: ids of the live (non-terminal happy-path)
    /// simulations, in primary-key order (same single-`In` projection
    /// scheme and same coherent job+simulation read view as
    /// [`Self::pending_job_ids`]).
    /// Live (non-terminal, non-held) simulations as `(id, app)` pairs —
    /// the app rides along so lease rows carry per-application ownership.
    fn live_sims(&self) -> Result<Vec<(i64, String)>, DbError> {
        let statuses: Vec<Value> = SimStatus::happy_path()
            .iter()
            .filter(|s| !s.is_terminal())
            .map(|s| Value::from(s.as_str()))
            .collect();
        let view = self
            .conn
            .read_view(&[GridJobRecord::TABLE, Simulation::TABLE])?;
        let sims: Vec<Simulation> =
            view.filter(&Query::new().filter("status", Op::In(statuses), Value::Null))?;
        Ok(sims
            .into_iter()
            .map(|s| (s.id.expect("selected simulation has id"), s.app))
            .collect())
    }

    fn live_sim_ids(&self) -> Result<Vec<i64>, DbError> {
        Ok(self.live_sims()?.into_iter().map(|(id, _)| id).collect())
    }

    /// True while a simulation waits out its transient backoff window.
    fn backed_off(&self, sim_id: i64) -> bool {
        self.next_attempt
            .get(&sim_id)
            .is_some_and(|&t| self.ticks < t)
    }

    /// Phase 1: generic grid-job status update (identical for all jobs
    /// "regardless of purpose or execution method", §4.4).
    fn poll_jobs(&mut self, grid: &Grid, report: &mut TickReport) {
        let pending = match self.pending_job_ids() {
            Ok(v) => v,
            Err(e) => {
                report.daemon_errors.push(e.to_string());
                return;
            }
        };
        let now = grid.now();
        let jobs = self.jobs();
        let mut dirty = Vec::new();
        for (job_id, sim_id) in pending {
            // Only the lease holder polls a simulation's jobs.
            if !self.owned.contains_key(&sim_id) {
                continue;
            }
            let timer = self.profile.is_some().then(std::time::Instant::now);
            let Ok(mut job) = jobs.get(job_id) else {
                continue;
            };
            let outcome = poll_job_once(
                &self.conn,
                grid,
                &self.config,
                &self.cred,
                &mut job,
                now,
                &mut dirty,
            );
            if let (Some(t), Some(p)) = (timer, self.profile.as_mut()) {
                p.poll_items.push((sim_id, t.elapsed()));
            }
            if outcome.polled {
                report.jobs_polled += 1;
            }
            if outcome.transitioned {
                report.job_transitions += 1;
            }
            if outcome.transient {
                report.transient_errors += 1;
            }
            if let Some(entry) = outcome.ops {
                self.ops_log.record(entry);
            }
        }
        if let Err(e) = commit_job_batch(&self.conn, &dirty) {
            report.daemon_errors.push(format!("job batch commit: {e}"));
        }
    }

    /// Phase 2: step every live simulation's workflow.
    fn step_simulations(&mut self, grid: &Grid, report: &mut TickReport) {
        let live = match self.live_sim_ids() {
            Ok(v) => v,
            Err(e) => {
                report.daemon_errors.push(e.to_string());
                return;
            }
        };

        let sims = self.sims();
        for sim_id in live {
            // Only the lease holder steps a simulation's workflow.
            let Some(&epoch) = self.owned.get(&sim_id) else {
                continue;
            };
            if self.backed_off(sim_id) {
                continue;
            }
            let timer = self.profile.is_some().then(std::time::Instant::now);
            let Ok(mut sim) = sims.get(sim_id) else {
                continue;
            };
            report.sims_stepped += 1;
            let from = sim.status;
            let outcome = step_sim_once(
                &self.conn,
                grid,
                &self.config,
                &self.cred,
                &mut sim,
                &mut self.ops_log,
                Some(epoch),
            );
            let now = grid.now().as_secs() as i64;
            self.apply_step_outcome(&mut sim, from, outcome, now, report, None);
            if let (Some(t), Some(p)) = (timer, self.profile.as_mut()) {
                p.step_items.push((sim_id, t.elapsed()));
            }
        }
    }

    /// Apply one simulation's step outcome: save the row, maintain the
    /// transient streak and backoff schedule, hold on model failures, and
    /// send the notifications. Runs on the daemon thread only — in the
    /// parallel tick this is the post-barrier merge step, executed in
    /// simulation-id order so its database side effects are identical to
    /// the sequential daemon's.
    fn apply_step_outcome(
        &mut self,
        sim: &mut Simulation,
        from: SimStatus,
        outcome: Result<Result<Option<SimStatus>, WorkflowError>, String>,
        now: i64,
        report: &mut TickReport,
        pre_saved: Option<bool>,
    ) {
        let sim_id = sim.id.expect("saved sim");
        let outcome = match outcome {
            Ok(o) => o,
            Err(msg) => {
                report.daemon_errors.push(msg);
                return;
            }
        };
        match outcome {
            Ok(Some(next)) => {
                self.transient_streak.remove(&sim_id);
                self.next_attempt.remove(&sim_id);
                let saved = pre_saved.unwrap_or_else(|| {
                    sim.status_message.clear();
                    self.sims().save(sim).is_ok()
                });
                if !saved {
                    return;
                }
                report.transitions.push((sim_id, from, next));
                amp_obs::counter(&amp_obs::labeled(
                    "daemon_transitions_total",
                    &[
                        ("app", &sim.app),
                        ("from", from.as_str()),
                        ("to", next.as_str()),
                    ],
                ))
                .inc();
                amp_obs::flight().record(
                    "transition",
                    format!(
                        "t={now} sim {sim_id}: {} -> {}",
                        from.as_str(),
                        next.as_str()
                    ),
                );
                self.send_transition_mail(sim, from, next, now);
                if next.is_terminal() {
                    self.release_lease(sim_id);
                }
            }
            Ok(None) => {
                self.transient_streak.remove(&sim_id);
                self.next_attempt.remove(&sim_id);
                if pre_saved.is_none() {
                    let _ = self.sims().save(sim);
                }
            }
            Err(WorkflowError::Transient(msg)) => {
                report.transient_errors += 1;
                let streak = {
                    let s = self.transient_streak.entry(sim_id).or_insert(0);
                    *s += 1;
                    *s
                };
                obs_metrics().transient_retries.inc();
                amp_obs::flight().record(
                    "transient",
                    format!("t={now} sim {sim_id} streak {streak}: {msg}"),
                );
                // Silent for users; a plain-text note on the status
                // display and an admin notification on first sight.
                sim.status_message = msg.clone();
                let _ = self.sims().save(sim);
                if streak == 1 {
                    self.notify_admins(Some(sim_id), "transient grid failure", &msg, now);
                }
                if streak > self.config.max_transient_retries {
                    self.hold(sim, &format!("transient storm: {msg}"), now, report);
                } else if self.config.transient_backoff_base_ticks > 0 {
                    // Exponential backoff: base * 2^(streak-1) ticks,
                    // capped so the shift cannot overflow.
                    let exp = (streak - 1).min(16);
                    let delay = self.config.transient_backoff_base_ticks << exp;
                    self.next_attempt.insert(sim_id, self.ticks + delay);
                    obs_metrics().backoffs.inc();
                    amp_obs::flight().record(
                        "backoff",
                        format!("t={now} sim {sim_id}: retry in {delay} ticks"),
                    );
                }
            }
            Err(WorkflowError::ModelFailure(msg)) => {
                self.hold(sim, &msg, now, report);
            }
            Err(WorkflowError::Daemon(msg)) => {
                report.daemon_errors.push(format!("sim {sim_id}: {msg}"));
            }
        }
    }

    /// One parallel daemon cycle: shard both phases across `workers`
    /// threads (per-simulation ownership), then merge deterministically.
    fn tick_parallel(&mut self, grid: &Grid, workers: usize) -> TickReport {
        let mut reports: Vec<TickReport> = vec![TickReport::default(); workers];
        let conns: Result<Vec<Connection>, DbError> = (0..workers)
            .map(|_| self.db.connect(amp_core::roles::ROLE_DAEMON))
            .collect();
        let conns = match conns {
            Ok(c) => c,
            Err(e) => {
                reports[0].daemon_errors.push(e.to_string());
                return merge_reports(reports);
            }
        };
        let now = grid.now();
        let config = self.config.clone();
        let cred = self.cred.clone();

        // ---- phase 1: generic job polling, sharded by owning sim ----
        match self.pending_job_ids() {
            Ok(pending) => {
                let mut chunks: Vec<Vec<(usize, i64)>> = vec![Vec::new(); workers];
                for (idx, (job_id, sim_id)) in pending.into_iter().enumerate() {
                    // Only the lease holder polls a simulation's jobs.
                    if !self.owned.contains_key(&sim_id) {
                        continue;
                    }
                    let w = sim_id.rem_euclid(workers as i64) as usize;
                    chunks[w].push((idx, job_id));
                }
                let mut ops: Vec<(usize, OpsEntry)> = std::thread::scope(|scope| {
                    let handles: Vec<_> = chunks
                        .into_iter()
                        .zip(conns.iter())
                        .zip(reports.iter_mut())
                        .map(|((chunk, conn), report)| {
                            let config = &config;
                            let cred = &cred;
                            scope.spawn(move || {
                                let jobs: Manager<GridJobRecord> = Manager::new(conn.clone());
                                let mut ops = Vec::new();
                                let mut dirty = Vec::new();
                                for (idx, job_id) in chunk {
                                    let Ok(mut job) = jobs.get(job_id) else {
                                        continue;
                                    };
                                    let o = poll_job_once(
                                        conn, grid, config, cred, &mut job, now, &mut dirty,
                                    );
                                    if o.polled {
                                        report.jobs_polled += 1;
                                    }
                                    if o.transitioned {
                                        report.job_transitions += 1;
                                    }
                                    if o.transient {
                                        report.transient_errors += 1;
                                    }
                                    if let Some(entry) = o.ops {
                                        ops.push((idx, entry));
                                    }
                                }
                                // One durable commit per worker chunk; the
                                // concurrent chunks' fsyncs collapse further
                                // via WAL group commit.
                                if let Err(e) = commit_job_batch(conn, &dirty) {
                                    report.daemon_errors.push(format!("job batch commit: {e}"));
                                }
                                ops
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().unwrap_or_default())
                        .collect()
                });
                // Worklist order == sequential order: replay the ops-log
                // segments by worklist index.
                ops.sort_by_key(|(idx, _)| *idx);
                for (_, entry) in ops {
                    self.ops_log.record(entry);
                }
            }
            Err(e) => reports[0].daemon_errors.push(e.to_string()),
        }

        // ---- phase 2: workflow steps, sharded by simulation ----
        match self.live_sim_ids() {
            Ok(live) => {
                let mut chunks: Vec<Vec<(usize, i64, i64)>> = vec![Vec::new(); workers];
                for (idx, sim_id) in live.into_iter().enumerate() {
                    // Only the lease holder steps a simulation.
                    let Some(&epoch) = self.owned.get(&sim_id) else {
                        continue;
                    };
                    if self.backed_off(sim_id) {
                        continue;
                    }
                    let w = sim_id.rem_euclid(workers as i64) as usize;
                    chunks[w].push((idx, sim_id, epoch));
                }
                let mut products: Vec<StepProduct> = std::thread::scope(|scope| {
                    let handles: Vec<_> = chunks
                        .into_iter()
                        .zip(conns.iter())
                        .zip(reports.iter_mut())
                        .enumerate()
                        .map(|(worker, ((chunk, conn), report))| {
                            let config = &config;
                            let cred = &cred;
                            scope.spawn(move || {
                                let sims: Manager<Simulation> = Manager::new(conn.clone());
                                let mut products = Vec::with_capacity(chunk.len());
                                for (idx, sim_id, epoch) in chunk {
                                    let Ok(mut sim) = sims.get(sim_id) else {
                                        continue;
                                    };
                                    report.sims_stepped += 1;
                                    let from = sim.status;
                                    let mut ops = OpsLog::new();
                                    let outcome = step_sim_once(
                                        conn,
                                        grid,
                                        config,
                                        cred,
                                        &mut sim,
                                        &mut ops,
                                        Some(epoch),
                                    );
                                    // Ok outcomes: persist here, in the
                                    // pool — this row is ours alone and
                                    // distinct-row saves commute.
                                    let pre_saved = match &outcome {
                                        Ok(Ok(Some(_))) => {
                                            sim.status_message.clear();
                                            let m: Manager<Simulation> = Manager::new(conn.clone());
                                            Some(m.save(&sim).is_ok())
                                        }
                                        Ok(Ok(None)) => {
                                            let m: Manager<Simulation> = Manager::new(conn.clone());
                                            Some(m.save(&sim).is_ok())
                                        }
                                        _ => None,
                                    };
                                    products.push(StepProduct {
                                        idx,
                                        worker,
                                        sim,
                                        from,
                                        outcome,
                                        ops,
                                        pre_saved,
                                    });
                                }
                                products
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().unwrap_or_default())
                        .collect()
                });
                // Post-barrier merge in worklist (simulation-id) order:
                // streaks, holds, saves, notifications and mail fire in
                // exactly the sequence the sequential daemon uses.
                products.sort_by_key(|p| p.idx);
                let now_secs = now.as_secs() as i64;
                for mut product in products {
                    for entry in product.ops.drain() {
                        self.ops_log.record(entry);
                    }
                    let mut report = std::mem::take(&mut reports[product.worker]);
                    self.apply_step_outcome(
                        &mut product.sim,
                        product.from,
                        product.outcome,
                        now_secs,
                        &mut report,
                        product.pre_saved,
                    );
                    reports[product.worker] = report;
                }
            }
            Err(e) => reports[0].daemon_errors.push(e.to_string()),
        }

        merge_reports(reports)
    }

    /// Park a simulation in the hold state (§4.4 model-failure handling).
    fn hold(&mut self, sim: &mut Simulation, msg: &str, now: i64, report: &mut TickReport) {
        sim.held_from = Some(sim.status.as_str().to_string());
        sim.status = SimStatus::Hold;
        sim.status_message = msg.to_string();
        if self.sims().save(sim).is_ok() {
            report.new_holds += 1;
            let sim_id = sim.id.expect("saved");
            obs_metrics().holds.inc();
            amp_obs::flight().record("hold", format!("t={now} sim {sim_id}: {msg}"));
            self.transient_streak.remove(&sim_id);
            self.next_attempt.remove(&sim_id);
            self.release_lease(sim_id);
            self.notify_user(
                sim,
                "simulation needs attention",
                "Your simulation hit a processing problem; AMP staff are investigating.",
                now,
            );
            self.notify_admins(Some(sim_id), "model failure (HOLD)", msg, now);
        }
    }

    /// Administrator action: resume a held simulation from the state it
    /// was in ("once the problem has been resolved, the workflow resumes
    /// automatically", §4.4).
    pub fn resume_from_hold(&mut self, sim_id: i64) -> Result<SimStatus, DbError> {
        let mut sim = self.sims().get(sim_id)?;
        if sim.status != SimStatus::Hold {
            return Err(DbError::Schema(format!(
                "simulation {sim_id} is not held (status {})",
                sim.status
            )));
        }
        let resume_to: SimStatus = sim
            .held_from
            .as_deref()
            .and_then(|s| s.parse().ok())
            .unwrap_or(SimStatus::Queued);
        sim.status = resume_to;
        sim.held_from = None;
        sim.status_message = "resumed by administrator".to_string();
        self.sims().save(&sim)?;
        Ok(resume_to)
    }

    fn send_transition_mail(&self, sim: &Simulation, from: SimStatus, to: SimStatus, now: i64) {
        let users = Manager::<AmpUser>::new(self.conn.clone());
        let Ok(owner) = users.get(sim.owner_id) else {
            return;
        };
        match owner.notify_mode {
            NotifyMode::None => {}
            NotifyMode::OnCompletion => {
                if to == SimStatus::Done {
                    self.notify_user(
                        sim,
                        "simulation complete",
                        "Your AMP simulation has completed; results are on the website.",
                        now,
                    );
                }
            }
            NotifyMode::EveryTransition => {
                self.notify_user(
                    sim,
                    &format!("simulation {from} -> {to}"),
                    &format!("Your AMP simulation moved from {from} to {to}."),
                    now,
                );
            }
        }
    }

    /// Convenience driver: tick, advance simulated time by the poll
    /// interval, repeat — until every simulation is terminal (DONE or
    /// HOLD) or `max_sim_hours` of simulated time elapse. Returns the
    /// number of ticks executed.
    ///
    /// With `poll_interval_secs == 0` the simulated clock never moves, so
    /// the deadline alone cannot terminate the loop; a no-progress bailout
    /// (no clock motion and a tick that changed nothing, many times in a
    /// row) guards against spinning forever on a stuck campaign.
    pub fn run_until_settled(&mut self, grid: &Grid, max_sim_hours: f64) -> usize {
        const MAX_STALLED_TICKS: usize = 1000;
        let deadline = grid.now() + SimDuration::from_hours(max_sim_hours);
        let mut ticks = 0;
        let mut stalled = 0usize;
        loop {
            let before = grid.now();
            let report = self.tick(grid);
            ticks += 1;
            let all_settled = self
                .sims()
                .all()
                .map(|sims| {
                    sims.iter()
                        .all(|s| matches!(s.status, SimStatus::Done | SimStatus::Hold))
                })
                .unwrap_or(true);
            if all_settled || grid.now() >= deadline {
                return ticks;
            }
            grid.advance(SimDuration::from_secs(self.config.poll_interval_secs));
            let progressed = report.job_transitions > 0
                || !report.transitions.is_empty()
                || report.new_holds > 0;
            if grid.now() == before && !progressed {
                stalled += 1;
                if stalled >= MAX_STALLED_TICKS {
                    return ticks;
                }
            } else {
                stalled = 0;
            }
        }
    }
}

/// The external daemon monitor (§4.4: "failures of the GridAMP daemon
/// itself are monitored externally and immediately brought to the
/// attention of the gateway administrators").
pub struct DaemonMonitor {
    /// Longest acceptable heartbeat silence, simulated seconds.
    pub max_silence_secs: i64,
}

/// The monitor's verdict on a daemon's lease posture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseHealth {
    /// The daemon holds no leases — idle, freshly started, or fully
    /// fenced out by peers. Not by itself a fault.
    NoLeases,
    /// Every held lease is unexpired at `now`.
    Active { held: usize },
    /// `stale` of the held leases are past expiry and unrenewed — the
    /// daemon has stopped renewing (wedged or paused) and peers will
    /// take its simulations over.
    Expired { stale: usize },
}

impl DaemonMonitor {
    /// True if the daemon looks alive at `now` (the monitor's clock).
    ///
    /// A heartbeat stamped *ahead* of `now` means the daemon's clock runs
    /// fast relative to the monitor's, not that the daemon is dead — skew
    /// produces a negative silence, which trivially passes the threshold.
    /// Only genuine silence (no beat within `max_silence_secs` of the
    /// monitor's clock) is unhealthy.
    pub fn healthy(&self, daemon: &GridAmp, now: i64) -> bool {
        match daemon.last_heartbeat {
            Some(hb) => now - hb <= self.max_silence_secs,
            None => false,
        }
    }

    /// Classify the daemon's lease rows at `now`. Reads the database, not
    /// the daemon's in-memory ownership map, so a wedged daemon that
    /// *believes* it owns simulations is still reported truthfully.
    pub fn lease_health(&self, daemon: &GridAmp, now: i64) -> Result<LeaseHealth, DbError> {
        let leases = daemon.held_leases()?;
        if leases.is_empty() {
            return Ok(LeaseHealth::NoLeases);
        }
        let stale = leases.iter().filter(|l| !l.valid_at(now)).count();
        if stale > 0 {
            Ok(LeaseHealth::Expired { stale })
        } else {
            Ok(LeaseHealth::Active { held: leases.len() })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amp_core::models::{Allocation, AmpUser, Star};
    use amp_stellar::StellarParams;

    /// A database with one queued simulation, plus a daemon on it.
    fn fixture() -> (Db, GridAmp, i64) {
        let db = Db::in_memory();
        amp_core::setup::initialize(&db).unwrap();
        let admin = db.connect(amp_core::roles::ROLE_ADMIN).unwrap();
        let mut user = AmpUser::new("u", "u@x.edu", "h", 0);
        Manager::<AmpUser>::new(admin.clone())
            .create(&mut user)
            .unwrap();
        let sky = amp_stellar::synthetic_sky(1, 1);
        let mut star = Star::from_catalog(&sky[0], "local");
        Manager::<Star>::new(admin.clone())
            .create(&mut star)
            .unwrap();
        let mut alloc = Allocation::new("kraken", "TG-1", 1000.0);
        Manager::<Allocation>::new(admin.clone())
            .create(&mut alloc)
            .unwrap();
        let mut sim = Simulation::new_direct(
            star.id.unwrap(),
            user.id.unwrap(),
            StellarParams::sun(),
            "kraken",
            alloc.id.unwrap(),
            0,
        );
        let sim_id = Manager::<Simulation>::new(admin).create(&mut sim).unwrap();
        let daemon = GridAmp::new(&db, DaemonConfig::default()).unwrap();
        (db, daemon, sim_id)
    }

    #[test]
    fn monitor_flags_silence_but_tolerates_clock_skew() {
        let (_db, mut daemon, _sim) = fixture();
        let monitor = DaemonMonitor {
            max_silence_secs: 100,
        };
        // no heartbeat yet: never healthy
        assert!(!monitor.healthy(&daemon, 0));
        daemon.last_heartbeat = Some(1000);
        assert!(monitor.healthy(&daemon, 1050));
        assert!(!monitor.healthy(&daemon, 1101));
        // a fast daemon clock stamps heartbeats in the monitor's future;
        // negative silence must read as alive, not as an i64 surprise
        daemon.clock_skew_secs = 500;
        daemon.last_heartbeat = Some(1500); // monitor clock says 1000
        assert!(monitor.healthy(&daemon, 1000));
    }

    #[test]
    fn lease_health_distinguishes_idle_active_and_expired() {
        let (_db, daemon, sim_id) = fixture();
        let monitor = DaemonMonitor {
            max_silence_secs: 100,
        };
        // zero-lease daemon: idle, not faulty
        assert_eq!(
            monitor.lease_health(&daemon, 0).unwrap(),
            LeaseHealth::NoLeases
        );
        let conn = daemon.conn.clone();
        lease::claim(&conn, daemon.daemon_id(), sim_id, "stellar", 0, 60).unwrap();
        assert_eq!(
            monitor.lease_health(&daemon, 30).unwrap(),
            LeaseHealth::Active { held: 1 }
        );
        // expired-but-unrenewed: the daemon stopped renewing
        assert_eq!(
            monitor.lease_health(&daemon, 61).unwrap(),
            LeaseHealth::Expired { stale: 1 }
        );
        // a peer takeover moves the row off this daemon entirely
        lease::claim(&conn, "peer", sim_id, "stellar", 61, 60).unwrap();
        assert_eq!(
            monitor.lease_health(&daemon, 62).unwrap(),
            LeaseHealth::NoLeases
        );
    }

    #[test]
    fn run_until_settled_bails_out_without_progress() {
        // A frozen clock (poll interval 0) plus a permanently unreachable
        // site and an uncapped transient retry budget used to spin
        // run_until_settled forever: the deadline can never arrive because
        // simulated time never moves. The no-progress guard must end the
        // loop instead.
        let mut dep = crate::setup::deploy(
            amp_grid::systems::kraken(),
            DaemonConfig {
                poll_interval_secs: 0,
                max_transient_retries: u32::MAX,
                ..DaemonConfig::default()
            },
            None,
        )
        .unwrap();
        dep.grid.faults.add_outage(
            "kraken",
            amp_grid::Service::Both,
            amp_grid::SimTime(0),
            amp_grid::SimTime(u64::MAX / 2),
        );
        let admin = dep.db.connect(amp_core::roles::ROLE_ADMIN).unwrap();
        let mut user = AmpUser::new("u", "u@x.edu", "h", 0);
        Manager::<AmpUser>::new(admin.clone())
            .create(&mut user)
            .unwrap();
        let sky = amp_stellar::synthetic_sky(1, 1);
        let mut star = Star::from_catalog(&sky[0], "local");
        Manager::<Star>::new(admin.clone())
            .create(&mut star)
            .unwrap();
        let mut alloc = Allocation::new("kraken", "TG-1", 1000.0);
        Manager::<Allocation>::new(admin.clone())
            .create(&mut alloc)
            .unwrap();
        let mut sim = Simulation::new_direct(
            star.id.unwrap(),
            user.id.unwrap(),
            StellarParams::sun(),
            "kraken",
            alloc.id.unwrap(),
            0,
        );
        Manager::<Simulation>::new(admin).create(&mut sim).unwrap();
        let ticks = dep.daemon.run_until_settled(&dep.grid, 48.0);
        assert!(
            (2..=1001).contains(&ticks),
            "expected the stall guard to fire, got {ticks} ticks"
        );
    }
}
