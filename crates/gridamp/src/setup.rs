//! Test/example rig: wire a database, a simulated TeraGrid, and the
//! daemon together the way Figure 2 deploys them.

use amp_core::models::{Allocation, AmpUser, Observation, Star};
use amp_core::OptimizationSpec;
use amp_grid::systems::SystemProfile;
use amp_grid::Grid;
use amp_simdb::orm::Manager;
use amp_simdb::{Db, DbError};
use amp_stellar::{synthesize, Domain, StellarParams};

use crate::daemon::GridAmp;
use crate::workflow::DaemonConfig;

/// A fully wired AMP deployment against one simulated system.
pub struct Deployment {
    pub db: Db,
    pub grid: Grid,
    pub daemon: GridAmp,
}

/// Build a deployment: initialize the DB schema + roles, register the
/// site, install the AMP software stack, and authorize the community
/// credential (the §4.3 "deployed as soon as the community account has
/// been authorized" property — nothing else is needed).
pub fn deploy(
    profile: SystemProfile,
    config: DaemonConfig,
    background_seed: Option<u64>,
) -> Result<Deployment, DbError> {
    let db = Db::in_memory();
    amp_core::setup::initialize(&db)?;
    let mut grid = Grid::new();
    let site = profile.name.clone();
    match background_seed {
        Some(seed) => grid.add_site_with_background(profile, seed),
        None => grid.add_site(profile),
    }
    crate::apps::install_amp_stack(&mut grid, &site);
    let daemon = GridAmp::new(&db, config)?;
    grid.authorize(&site, daemon.credential());
    Ok(Deployment { db, grid, daemon })
}

/// Build a deployment spanning several simulated systems — the TeraGrid
/// shape of Figure 1, where one daemon drives simulations on frost,
/// kraken, lonestar, and ranger at once. Every site gets the AMP stack
/// and authorizes the same community credential.
pub fn deploy_multi(
    profiles: Vec<SystemProfile>,
    config: DaemonConfig,
    background_seed: Option<u64>,
) -> Result<Deployment, DbError> {
    let db = Db::in_memory();
    amp_core::setup::initialize(&db)?;
    let mut grid = Grid::new();
    let daemon = GridAmp::new(&db, config)?;
    for profile in profiles {
        let site = profile.name.clone();
        match background_seed {
            Some(seed) => grid.add_site_with_background(profile, seed),
            None => grid.add_site(profile),
        }
        crate::apps::install_amp_stack(&mut grid, &site);
        grid.authorize(&site, daemon.credential());
    }
    Ok(Deployment { db, grid, daemon })
}

/// A multi-daemon control plane against one database and one grid: the
/// lease-based scale-out deployment the chaos tests exercise.
pub struct ClusterDeployment {
    pub db: Db,
    pub grid: Grid,
    pub daemons: Vec<GridAmp>,
}

/// Build `n` daemons (distinct `daemon_id`s `gridamp-0..n`) sharing one
/// database and one simulated system. Every daemon's community credential
/// is authorized at the site, so any of them can drive any simulation —
/// the lease table decides who actually does.
pub fn deploy_cluster(
    profile: SystemProfile,
    base_config: DaemonConfig,
    n: usize,
) -> Result<ClusterDeployment, DbError> {
    let db = Db::in_memory();
    amp_core::setup::initialize(&db)?;
    let mut grid = Grid::new();
    let site = profile.name.clone();
    grid.add_site(profile);
    crate::apps::install_amp_stack(&mut grid, &site);
    let mut daemons = Vec::with_capacity(n);
    for i in 0..n {
        let config = DaemonConfig {
            daemon_id: format!("gridamp-{i}"),
            ..base_config.clone()
        };
        let daemon = GridAmp::new(&db, config)?;
        grid.authorize(&site, daemon.credential());
        daemons.push(daemon);
    }
    Ok(ClusterDeployment { db, grid, daemons })
}

/// Seed a user (approved), a star, an allocation, and an observation set
/// synthesized from `truth`. Returns (user id, star id, allocation id,
/// observation id).
pub fn seed_fixtures(
    db: &Db,
    system: &str,
    truth: &StellarParams,
    seed: u64,
) -> Result<(i64, i64, i64, i64), DbError> {
    let admin = db.connect(amp_core::roles::ROLE_ADMIN)?;
    let users = Manager::<AmpUser>::new(admin.clone());
    let mut user = AmpUser::new("astro1", "astro1@example.edu", "hash", 0);
    user.approved = true;
    users.create(&mut user)?;

    let stars = Manager::<Star>::new(admin.clone());
    let sky = amp_stellar::synthetic_sky(1, seed);
    let mut star = Star::from_catalog(&sky[0], "local");
    stars.create(&mut star)?;

    let allocs = Manager::<Allocation>::new(admin.clone());
    let mut alloc = Allocation::new(system, "TG-AST090030", 10_000_000.0);
    allocs.create(&mut alloc)?;

    let observed = synthesize(&star.identifier, truth, &Domain::default(), 0.1, seed)
        .map_err(|e| DbError::Schema(e.to_string()))?;
    let observations = Manager::<Observation>::new(admin);
    let mut obs = Observation::new(star.id.unwrap(), user.id.unwrap(), &observed, 0);
    observations.create(&mut obs)?;

    Ok((
        user.id.unwrap(),
        star.id.unwrap(),
        alloc.id.unwrap(),
        obs.id.unwrap(),
    ))
}

/// Seed curve-fit fixtures for an already-seeded deployment: a fresh
/// target "star" (the catalog row doubles as the generic observation
/// target) plus a synthesized damped-sinusoid observation set owned by
/// `user_id`. Returns (star id, observation id).
pub fn seed_curvefit_fixtures(
    db: &Db,
    user_id: i64,
    truth: &amp_core::app::curvefit::CurveParams,
    seed: u64,
) -> Result<(i64, i64), DbError> {
    let admin = db.connect(amp_core::roles::ROLE_ADMIN)?;
    let stars = Manager::<Star>::new(admin.clone());
    let sky = amp_stellar::synthetic_sky(1, seed.wrapping_add(7000));
    let mut star = Star::from_catalog(&sky[0], "curvefit");
    star.identifier = format!("CF {seed}");
    stars.create(&mut star)?;

    let curve = amp_core::app::curvefit::synthesize_curve(&star.identifier, truth, 60, 0.02, seed);
    let observations = Manager::<Observation>::new(admin);
    let mut obs = Observation::from_data_json(
        star.id.unwrap(),
        user_id,
        serde_json::to_string(&curve).expect("curve observation serializes"),
        0,
    );
    observations.create(&mut obs)?;
    Ok((star.id.unwrap(), obs.id.unwrap()))
}

/// A quick optimization spec scaled down for tests (seconds instead of
/// hours of simulated compute, but the same workflow shape).
pub fn small_spec(seed: u64) -> OptimizationSpec {
    OptimizationSpec {
        ga_runs: 2,
        population: 20,
        generations: 30,
        cores_per_run: 128,
        seed,
    }
}
