//! GA problem glue: the legacy asteroseismic fitting problem (the
//! MPIKAIA↔ASTEC coupling of §2) and the generic [`AppProblem`] that binds
//! any registered [`ScienceApp`]'s compiled fitness function to the engine.

use std::sync::Arc;

use amp_core::app::{FitnessFn, ScienceApp};
use amp_ga::Problem;
use amp_stellar::{fitness, Domain, ObservedStar, StellarParams};

/// A [`Problem`] built from a registered science application: genome width
/// comes from the app's parameter schema, fitness from its compiled
/// observation closure, and metric attribution from its registry id.
pub struct AppProblem {
    app: Arc<dyn ScienceApp>,
    f: FitnessFn,
}

impl AppProblem {
    pub fn new(app: Arc<dyn ScienceApp>, f: FitnessFn) -> Self {
        AppProblem { app, f }
    }

    pub fn app(&self) -> &Arc<dyn ScienceApp> {
        &self.app
    }
}

impl Problem for AppProblem {
    fn n_genes(&self) -> usize {
        self.app.n_genes()
    }

    fn fitness(&self, phenotype: &[f64]) -> f64 {
        (self.f)(phenotype)
    }

    fn app_label(&self) -> &'static str {
        self.app.id()
    }
}

/// Fit five stellar parameters to an observation set.
pub struct StellarFitProblem {
    pub observed: ObservedStar,
    pub domain: Domain,
}

impl StellarFitProblem {
    pub fn new(observed: ObservedStar) -> Self {
        StellarFitProblem {
            observed,
            domain: Domain::default(),
        }
    }

    /// Decode a normalized genome into physical parameters.
    pub fn decode(&self, phenotype: &[f64]) -> StellarParams {
        self.domain.decode(phenotype).expect("5-gene phenotype")
    }
}

impl Problem for StellarFitProblem {
    fn n_genes(&self) -> usize {
        Domain::N_PARAMS
    }

    fn fitness(&self, phenotype: &[f64]) -> f64 {
        match self.domain.decode(phenotype) {
            Ok(params) => fitness(&self.observed, &params, &self.domain),
            Err(_) => 0.0,
        }
    }

    fn app_label(&self) -> &'static str {
        "stellar"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amp_ga::{Ga, GaConfig};
    use amp_stellar::synthesize;

    #[test]
    fn ga_recovers_synthetic_star() {
        let domain = Domain::default();
        let truth = StellarParams {
            mass: 1.15,
            metallicity: 0.022,
            helium: 0.265,
            alpha: 2.1,
            age: 4.2,
        };
        let observed = synthesize("TEST", &truth, &domain, 0.1, 11).unwrap();
        let problem = StellarFitProblem::new(observed);
        // the paper's Kepler configuration: 126 stars, 200 iterations
        let mut ga = Ga::new(
            &problem,
            GaConfig {
                population: 126,
                generations: 200,
                ..GaConfig::default()
            },
            23,
        );
        ga.run(u32::MAX);
        let best = problem.decode(&ga.best().phenotype);
        // The GA should land near the truth in the dominant parameters.
        assert!(
            (best.mass - truth.mass).abs() < 0.15,
            "mass {} vs {}",
            best.mass,
            truth.mass
        );
        assert!(ga.best().fitness > 0.03, "fitness {}", ga.best().fitness);
        // and beat a random-corner candidate handily
        let corner = problem.fitness(&[0.95, 0.95, 0.95, 0.95, 0.95]);
        assert!(ga.best().fitness > corner);
    }

    #[test]
    fn app_problem_reproduces_stellar_fitness_bit_for_bit() {
        let domain = Domain::default();
        let observed = synthesize("T", &StellarParams::benchmark(), &domain, 0.1, 2).unwrap();
        let staged = amp_core::marshal::generate_observation_file(&observed);
        let reparsed = amp_core::marshal::parse_observation_file(&staged).unwrap();
        let legacy = StellarFitProblem::new(reparsed);

        let app = amp_core::app::lookup("stellar").unwrap();
        let f = app.fitness_fn(&staged).unwrap();
        let generic = AppProblem::new(app, f);

        assert_eq!(generic.n_genes(), legacy.n_genes());
        assert_eq!(generic.app_label(), "stellar");
        for x in [
            [0.5, 0.5, 0.5, 0.5, 0.5],
            [0.1, 0.9, 0.3, 0.7, 0.2],
            [0.95, 0.95, 0.95, 0.95, 0.95],
            [0.0, 0.0, 0.0, 0.0, 0.0],
        ] {
            assert_eq!(generic.fitness(&x).to_bits(), legacy.fitness(&x).to_bits());
        }
    }

    #[test]
    fn fitness_is_pure_and_bounded() {
        let domain = Domain::default();
        let observed = synthesize("T", &StellarParams::benchmark(), &domain, 0.1, 2).unwrap();
        let p = StellarFitProblem::new(observed);
        let x = [0.5; 5];
        let a = p.fitness(&x);
        let b = p.fitness(&x);
        assert_eq!(a, b);
        assert!((0.0..=1.0).contains(&a));
    }
}
