//! The deployment advisor: §2's system-selection reasoning, executable.
//!
//! "For our production deployment, we have targeted the NICS Kraken system
//! due to its short solution time and support for WS-GRAM. The TACC
//! systems demonstrated better performance, but the small disk space
//! available on Lonestar and lack of WS-GRAM on Ranger, combined with the
//! current allocation oversubscription on those systems, discouraged their
//! use for this project."
//!
//! Given system profiles and an ensemble spec, the advisor scores each
//! system on exactly those axes and recommends a production target.

use amp_core::OptimizationSpec;
use amp_grid::SystemProfile;
use serde::{Deserialize, Serialize};

/// Why a system was penalized (or not).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assessment {
    pub system: String,
    /// Predicted optimization run time \[h] (the astronomer's headline
    /// metric, §2).
    pub predicted_opt_hours: f64,
    /// Predicted SU charge for one optimization run.
    pub predicted_sus: f64,
    pub has_ws_gram: bool,
    /// Scratch space vs. what one simulation needs.
    pub disk_sufficient: bool,
    /// Background (competing) utilization — oversubscription proxy.
    pub oversubscription: f64,
    /// Lower is better; [`recommend`] picks the minimum.
    pub score: f64,
    /// Human-readable concerns, in the paper's vocabulary.
    pub concerns: Vec<String>,
}

/// Rough scratch footprint of one optimization run: input + restart +
/// final files per GA run, plus the consolidated tar (bytes).
pub fn scratch_footprint(spec: &OptimizationSpec) -> u64 {
    // restart files dominate: population x 5 genes x ~40 bytes, doubled
    // for history + logs, per run; generous 64 kB floor each.
    let per_run = ((spec.population as u64 * 5 * 40) * 4).max(64 << 10);
    (per_run * spec.ga_runs as u64) * 2 // plus the tar copy
}

/// Predict the optimization run time from the Table 1 relationship:
/// ~benchmark x generations x convergence factor (~0.85).
pub fn predict_opt_hours(profile: &SystemProfile, spec: &OptimizationSpec) -> f64 {
    profile.model_benchmark_minutes * spec.generations as f64 * 0.85 / 60.0
}

/// Assess one system for the given workload.
pub fn assess(profile: &SystemProfile, spec: &OptimizationSpec) -> Assessment {
    let predicted_opt_hours = predict_opt_hours(profile, spec);
    let predicted_sus = predicted_opt_hours * spec.total_cores() as f64 * profile.su_per_cpuh;
    // Production needs room for hundreds of concurrent simulation trees
    // plus staging copies; the paper judged Lonestar's scratch "small".
    const PRODUCTION_DISK_BAR: u64 = 1 << 40; // 1 TiB
    let disk_sufficient = profile.scratch_quota_bytes >= PRODUCTION_DISK_BAR
        && profile.scratch_quota_bytes >= scratch_footprint(spec) * 16;
    let mut concerns = Vec::new();
    if !profile.has_ws_gram {
        concerns.push("no WS-GRAM support".to_string());
    }
    if !disk_sufficient {
        concerns.push("small disk space".to_string());
    }
    if profile.background_utilization >= 0.7 {
        concerns.push("allocation oversubscription".to_string());
    }

    // Score: solution time with multiplicative penalties for each §2
    // concern. The paper weighs usability concerns above raw speed — the
    // TACC systems were faster but still lost.
    let mut score = predicted_opt_hours;
    if !profile.has_ws_gram {
        score *= 2.0;
    }
    if !disk_sufficient {
        score *= 2.0;
    }
    if profile.background_utilization >= 0.7 {
        score *= 2.5; // oversubscribed queues dominate turnaround in practice
    }

    Assessment {
        system: profile.name.clone(),
        predicted_opt_hours,
        predicted_sus,
        has_ws_gram: profile.has_ws_gram,
        disk_sufficient,
        oversubscription: profile.background_utilization,
        score,
        concerns,
    }
}

/// Rank all candidates (best first) and return the recommendation.
pub fn recommend(
    profiles: &[SystemProfile],
    spec: &OptimizationSpec,
) -> (Assessment, Vec<Assessment>) {
    let mut ranked: Vec<Assessment> = profiles.iter().map(|p| assess(p, spec)).collect();
    ranked.sort_by(|a, b| a.score.total_cmp(&b.score));
    (ranked[0].clone(), ranked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amp_grid::systems::{lonestar, ranger, table1_systems};

    #[test]
    fn production_recommendation_is_kraken() {
        // the paper's own conclusion from Table 1 + §2's concerns
        let (best, ranked) = recommend(&table1_systems(), &OptimizationSpec::default());
        assert_eq!(best.system, "kraken", "{ranked:#?}");
        assert!(best.concerns.is_empty());
    }

    #[test]
    fn ranger_penalized_for_missing_ws_gram() {
        let a = assess(&ranger(), &OptimizationSpec::default());
        assert!(!a.has_ws_gram);
        assert!(a.concerns.iter().any(|c| c.contains("WS-GRAM")));
        // despite being faster than Frost, it scores worse than Kraken
        let k = assess(&amp_grid::systems::kraken(), &OptimizationSpec::default());
        assert!(a.predicted_opt_hours < 60.0);
        assert!(a.score > k.score);
    }

    #[test]
    fn lonestar_flagged_for_oversubscription_and_fastest_raw_time() {
        let a = assess(&lonestar(), &OptimizationSpec::default());
        assert!(a.concerns.iter().any(|c| c.contains("oversubscription")));
        // TACC "demonstrated better performance" on raw time
        let times: Vec<f64> = table1_systems()
            .iter()
            .map(|p| assess(p, &OptimizationSpec::default()).predicted_opt_hours)
            .collect();
        assert!(
            a.predicted_opt_hours <= times.iter().cloned().fold(f64::INFINITY, f64::min) + 1e-9
        );
    }

    #[test]
    fn lonestar_disk_judged_small_for_production() {
        // the paper's exact concern: fast, but "small disk space"
        let a = assess(&lonestar(), &OptimizationSpec::default());
        assert!(!a.disk_sufficient);
        assert!(a.concerns.iter().any(|c| c.contains("disk")));
        // a roomy system has no disk concern
        let k = assess(&amp_grid::systems::kraken(), &OptimizationSpec::default());
        assert!(k.disk_sufficient);
    }

    #[test]
    fn predictions_match_table1_band() {
        for p in table1_systems() {
            let a = assess(&p, &OptimizationSpec::default());
            // predicted hours ~ benchmark x 170 (within the convergence band)
            let multiple = a.predicted_opt_hours * 60.0 / p.model_benchmark_minutes;
            assert!((150.0..190.0).contains(&multiple), "{}: {multiple}", p.name);
            assert!(a.predicted_sus > 10_000.0);
        }
    }

    #[test]
    fn footprint_scales_with_ensemble() {
        let small = scratch_footprint(&OptimizationSpec {
            ga_runs: 1,
            ..OptimizationSpec::default()
        });
        let big = scratch_footprint(&OptimizationSpec {
            ga_runs: 8,
            ..OptimizationSpec::default()
        });
        assert!(big > small * 4);
    }
}
