//! The optimization-run derived workflow — Figure 1's ensemble.
//!
//! Four independent GA runs execute in parallel, each as a chain of
//! walltime-limited jobs propagated by restart files; when all converge,
//! the best candidate gets a solution-evaluation detail run (§2). "The
//! most complex portion of the workflow is downloading and interpreting
//! partial result files" (§5) — that is [`check_work`].
//!
//! Science-specific handling is delegated to the simulation's
//! [`ScienceApp`]: observation staging, converged-artifact fitness
//! extraction, and solution-input rendering. The engine moves artifacts as
//! opaque bytes and assembles the final result by splicing them verbatim,
//! so stored results are byte-identical to what the runs produced.
//!
//! [`ScienceApp`]: amp_core::app::ScienceApp

use amp_core::models::Observation;
use amp_core::status::{JobPurpose, JobStatus};
use amp_core::OptimizationSpec;
use amp_core::SimPayload;
use amp_ga::Checkpoint;
use amp_grid::{GramJobHandle, GridError, SiteFs};
use amp_simdb::orm::Manager;
use amp_stellar::ModelOutput;
use serde::{Deserialize, Serialize};

use crate::apps::{files, GaRunResult};
use crate::error::WorkflowError;
use crate::workflow::StageCtx;

/// The stellar final payload shape (kept for typed access by existing
/// consumers; the engine itself assembles `result_json` by raw splice and
/// never round-trips through this struct).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizationResult {
    /// Best-of-ensemble GA candidate.
    pub best: GaRunResult,
    /// Solution-evaluation detail run of that candidate.
    pub detail: ModelOutput,
    /// Every run's converged result (optimality confidence, §2).
    pub runs: Vec<GaRunResult>,
}

fn spec_of(ctx: &StageCtx<'_>) -> Result<(OptimizationSpec, i64), WorkflowError> {
    match ctx
        .sim
        .payload()
        .map_err(|e| WorkflowError::ModelFailure(e.to_string()))?
    {
        SimPayload::Optimization {
            spec,
            observation_id,
        } => Ok((spec, observation_id)),
        _ => Err(WorkflowError::Daemon(
            "optimization workflow on non-optimization simulation".into(),
        )),
    }
}

fn run_dir(ctx: &StageCtx<'_>, run: u32) -> String {
    format!("{}/run{run}", ctx.workdir())
}

fn ga_args(spec: &OptimizationSpec, run: u32) -> Vec<String> {
    vec![
        spec.population.to_string(),
        spec.generations.to_string(),
        (spec.seed + run as u64).to_string(),
    ]
}

/// Expected jobs per GA run when chaining (§6): total GA time over the
/// per-job walltime budget, plus one for safety.
fn chain_length(ctx: &StageCtx<'_>, spec: &OptimizationSpec) -> i64 {
    let bench = ctx
        .grid
        .site(&ctx.sim.system)
        .map(|s| s.profile.model_benchmark_minutes)
        .unwrap_or(20.0);
    let total_minutes = bench * (spec.generations as f64 + 1.0) * 1.1;
    let budget = ctx.config.work_walltime_hours * 60.0 * 0.97;
    (total_minutes / budget).ceil() as i64 + 1
}

/// Fetch a remote file, mapping "no such file" to `None` (an expected
/// outcome while a run has not converged) and transients to retry.
fn try_stage_out(ctx: &mut StageCtx<'_>, path: &str) -> Result<Option<Vec<u8>>, WorkflowError> {
    let proxy = ctx.proxy();
    match ctx.grid.ftp_get(&ctx.sim.system, &proxy, path) {
        Ok((data, _)) => Ok(Some(data)),
        Err(GridError::NoSuchFile { .. }) => Ok(None),
        Err(e) => Err(e.into()),
    }
}

/// Stage observations and launch the ensemble (one chain per GA run).
pub fn submit_work(ctx: &mut StageCtx<'_>) -> Result<bool, WorkflowError> {
    if !ctx.jobs_of(JobPurpose::Work)?.is_empty() {
        return Ok(true);
    }
    let app = ctx.app()?;
    let (spec, observation_id) = spec_of(ctx)?;
    let observations = Manager::<Observation>::new(ctx.conn.clone());
    let obs_rec = observations.get(observation_id)?;
    let obs_text = app
        .observation_input(&obs_rec.data_json)
        .map_err(WorkflowError::ModelFailure)?;

    for r in 0..spec.ga_runs {
        let dir = run_dir(ctx, r);
        ctx.stage_in(&format!("{dir}/{}", files::OBS_IN), obs_text.clone())?;
        if ctx.config.job_chaining {
            // §6: submit the whole continuation chain up-front with
            // scheduler dependencies so the queue waits overlap.
            let k = chain_length(ctx, &spec);
            let mut prev: Option<GramJobHandle> = None;
            for c in 0..k {
                let deps = prev.iter().cloned().collect();
                let rec = ctx.submit_batch(
                    JobPurpose::Work,
                    r as i64,
                    c,
                    &app.ga_path(),
                    ga_args(&spec, r),
                    spec.cores_per_run,
                    dir.clone(),
                    deps,
                )?;
                prev = rec.gram_handle.clone().map(GramJobHandle);
            }
        } else {
            ctx.submit_batch(
                JobPurpose::Work,
                r as i64,
                0,
                &app.ga_path(),
                ga_args(&spec, r),
                spec.cores_per_run,
                dir.clone(),
                vec![],
            )?;
        }
    }
    Ok(true)
}

/// Interpret partial results, submit continuations, and run the solution
/// evaluation once every GA run has converged.
pub fn check_work(ctx: &mut StageCtx<'_>) -> Result<bool, WorkflowError> {
    let app = ctx.app()?;
    let (spec, _) = spec_of(ctx)?;
    let work = ctx.jobs_of(JobPurpose::Work)?;
    if work.is_empty() {
        // Records wiped during an administrator hold-fix: resubmit.
        submit_work(ctx)?;
        return Ok(false);
    }

    let mut progress_sum = 0.0;
    let mut all_converged = true;
    for r in 0..spec.ga_runs {
        let run_jobs: Vec<_> = work.iter().filter(|j| j.ga_run == r as i64).collect();
        let Some(last) = run_jobs.last() else {
            all_converged = false;
            continue;
        };
        let chain_settled = run_jobs.iter().all(|j| j.status.is_terminal());

        // Converged as soon as a final.json exists remotely.
        let dir = run_dir(ctx, r);
        let final_path = format!("{dir}/{}", files::FINAL);
        if try_stage_out(ctx, &final_path)?.is_some() {
            progress_sum += 1.0;
            continue;
        }
        all_converged = false;

        match last.status {
            JobStatus::Unsubmitted | JobStatus::Pending | JobStatus::Active => {
                // Partial progress from the last *finished* continuation.
                progress_sum += run_progress(ctx, &dir, &spec)?;
            }
            JobStatus::Done => {
                progress_sum += run_progress(ctx, &dir, &spec)?;
                if chain_settled {
                    // Chain exhausted without convergence: extend it.
                    let next = last.continuation + 1;
                    ctx.submit_batch(
                        JobPurpose::Work,
                        r as i64,
                        next,
                        &app.ga_path(),
                        ga_args(&spec, r),
                        spec.cores_per_run,
                        dir.clone(),
                        vec![],
                    )?;
                }
            }
            JobStatus::Failed => {
                if last.detail.contains("walltime") {
                    // Killed at the limit; the restart file survives —
                    // submit the continuation.
                    progress_sum += run_progress(ctx, &dir, &spec)?;
                    if chain_settled {
                        let next = last.continuation + 1;
                        ctx.submit_batch(
                            JobPurpose::Work,
                            r as i64,
                            next,
                            &app.ga_path(),
                            ga_args(&spec, r),
                            spec.cores_per_run,
                            dir.clone(),
                            vec![],
                        )?;
                    }
                } else {
                    return Err(WorkflowError::ModelFailure(format!(
                        "GA run {r} failed: {}",
                        last.detail
                    )));
                }
            }
        }
    }
    ctx.sim.progress = (progress_sum / spec.ga_runs as f64).clamp(0.0, 0.99);

    if !all_converged {
        return Ok(false);
    }

    // Solution evaluation (§2: "the best solution is evaluated using the
    // forward model to produce detailed output").
    let solution = ctx.jobs_of(JobPurpose::SolutionEvaluation)?;
    match solution.first().map(|j| j.status) {
        None => {
            let best_raw = best_of_ensemble(ctx, &spec)?;
            let input = ctx
                .app()?
                .solution_input(&best_raw)
                .map_err(WorkflowError::ModelFailure)?;
            let dir = format!("{}/solution", ctx.workdir());
            ctx.stage_in(&format!("{dir}/{}", files::PARAMS_IN), input)?;
            ctx.submit_batch(
                JobPurpose::SolutionEvaluation,
                -1,
                0,
                &app.model_path(),
                vec![],
                app.resources().model_cores,
                dir,
                vec![],
            )?;
            Ok(false)
        }
        Some(JobStatus::Done) => Ok(true),
        Some(JobStatus::Failed) => Err(WorkflowError::ModelFailure(format!(
            "solution evaluation failed: {}",
            solution[0].detail
        ))),
        Some(_) => Ok(false),
    }
}

/// Progress of one GA run from its last staged-out restart file.
fn run_progress(
    ctx: &mut StageCtx<'_>,
    dir: &str,
    _spec: &OptimizationSpec,
) -> Result<f64, WorkflowError> {
    let restart_path = format!("{dir}/{}", files::RESTART);
    match try_stage_out(ctx, &restart_path)? {
        None => Ok(0.0), // nothing staged out yet
        Some(raw) => {
            let text = String::from_utf8_lossy(&raw);
            let cp = Checkpoint::from_text(&text).map_err(|e| {
                WorkflowError::ModelFailure(format!("restart failed to parse: {e}"))
            })?;
            Ok(cp.progress())
        }
    }
}

/// Fetch every run's final artifact and pick the fittest (earliest run
/// wins ties, matching the original typed comparison). Returns the raw
/// artifact bytes for verbatim solution staging.
fn best_of_ensemble(
    ctx: &mut StageCtx<'_>,
    spec: &OptimizationSpec,
) -> Result<Vec<u8>, WorkflowError> {
    let app = ctx.app()?;
    let mut best: Option<(f64, Vec<u8>)> = None;
    for r in 0..spec.ga_runs {
        let path = format!("{}/{}", run_dir(ctx, r), files::FINAL);
        let data = try_stage_out(ctx, &path)?
            .ok_or_else(|| WorkflowError::ModelFailure(format!("run {r} final result vanished")))?;
        let fitness = app.final_fitness(&data).map_err(|e| {
            WorkflowError::ModelFailure(format!("run {r} result failed to parse: {e}"))
        })?;
        best = match best {
            Some((bf, braw)) if bf >= fitness => Some((bf, braw)),
            _ => Some((fitness, data)),
        };
    }
    best.map(|(_, raw)| raw)
        .ok_or_else(|| WorkflowError::Daemon("no GA runs in ensemble".into()))
}

/// Extract the ensemble's results from the consolidated tar. The final
/// `result_json` is assembled by splicing the raw artifacts verbatim into
/// `{"best":...,"detail":...,"runs":[...]}` — no re-serialization, so the
/// stored bytes match a typed round-trip of [`OptimizationResult`] exactly
/// for well-formed artifacts while staying application-agnostic.
pub fn postprocess(ctx: &mut StageCtx<'_>) -> Result<bool, WorkflowError> {
    let app = ctx.app()?;
    let (spec, _) = spec_of(ctx)?;
    let tar = ctx.stage_out(&format!("{}/{}", ctx.workdir(), files::RESULTS_TAR))?;
    let entries = SiteFs::untar(&tar)
        .map_err(|e| WorkflowError::ModelFailure(format!("corrupt results tar: {e}")))?;
    let find = |path: &str| -> Option<&Vec<u8>> {
        entries.iter().find(|(p, _)| p == path).map(|(_, d)| d)
    };

    let detail_path = format!("{}/solution/{}", ctx.workdir(), files::MODEL_OUT);
    let detail = find(&detail_path).ok_or_else(|| {
        WorkflowError::ModelFailure(format!("mandatory output {detail_path} missing"))
    })?;
    app.check_model_output(detail)
        .map_err(|e| WorkflowError::ModelFailure(format!("solution output: {e}")))?;

    let mut runs: Vec<&Vec<u8>> = Vec::with_capacity(spec.ga_runs as usize);
    let mut fitnesses = Vec::with_capacity(spec.ga_runs as usize);
    for r in 0..spec.ga_runs {
        let path = format!("{}/{}", run_dir(ctx, r), files::FINAL);
        let data = find(&path).ok_or_else(|| {
            WorkflowError::ModelFailure(format!("run {r} final missing from tar"))
        })?;
        let fitness = app
            .final_fitness(data)
            .map_err(|e| WorkflowError::ModelFailure(format!("run {r} result: {e}")))?;
        runs.push(data);
        fitnesses.push(fitness);
    }
    // max_by keeps the *last* maximal element, matching the original typed
    // reduction over the runs vector.
    let best = fitnesses
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| runs[i])
        .ok_or_else(|| WorkflowError::Daemon("empty ensemble".into()))?;

    let splice = |raw: &[u8]| String::from_utf8_lossy(raw).into_owned();
    let runs_json: Vec<String> = runs.iter().map(|r| splice(r)).collect();
    ctx.sim.result_json = Some(format!(
        "{{\"best\":{},\"detail\":{},\"runs\":[{}]}}",
        splice(best),
        splice(detail),
        runs_json.join(",")
    ));
    Ok(true)
}
