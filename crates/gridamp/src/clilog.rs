//! The operations log: Globus command-line transparency.
//!
//! §4.4: "The most important operational benefit for wrapping command line
//! clients is that it provides excellent support for troubleshooting. The
//! daemon produces logs that clearly highlight warnings and errors with
//! the relevant command lines displayed for failure cases. To
//! troubleshoot, a developer needs only to open a new console on the
//! GridAMP server and copy-paste the line at the shell prompt to retry the
//! failed action."
//!
//! Every grid client call the daemon makes is recorded here with its
//! Globus-CLI-equivalent command line; failures are highlighted and keep
//! the exact line to paste.

use amp_grid::{GramJobSpec, GramService};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Outcome of one logged operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OpOutcome {
    Ok,
    /// Anticipated transient (silently retried; admins notified).
    Transient(String),
    /// Hard failure (model-failure class).
    Failed(String),
}

/// One operations-log entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpsEntry {
    /// Simulated time of the call (seconds).
    pub at: i64,
    /// Simulation this call served, if any.
    pub simulation_id: Option<i64>,
    /// The copy-pasteable command line.
    pub command: String,
    pub outcome: OpOutcome,
}

impl OpsEntry {
    pub fn is_failure(&self) -> bool {
        !matches!(self.outcome, OpOutcome::Ok)
    }

    /// Render one log line, highlighting warnings/errors as the paper
    /// describes.
    pub fn render(&self) -> String {
        match &self.outcome {
            OpOutcome::Ok => format!("t={} ok    $ {}", self.at, self.command),
            OpOutcome::Transient(m) => format!(
                "t={} WARN  $ {}\n            transient: {m} (will retry; paste the line above to retry manually)",
                self.at, self.command
            ),
            OpOutcome::Failed(m) => format!(
                "t={} ERROR $ {}\n            failed: {m} (paste the line above to reproduce)",
                self.at, self.command
            ),
        }
    }
}

/// Bounded in-memory operations log (the daemon's console/log file).
#[derive(Debug, Default)]
pub struct OpsLog {
    entries: VecDeque<OpsEntry>,
    capacity: usize,
}

impl OpsLog {
    pub fn new() -> OpsLog {
        OpsLog {
            entries: VecDeque::new(),
            capacity: 10_000,
        }
    }

    pub fn with_capacity(capacity: usize) -> OpsLog {
        OpsLog {
            entries: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    pub fn record(&mut self, entry: OpsEntry) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(entry);
    }

    pub fn entries(&self) -> impl Iterator<Item = &OpsEntry> {
        self.entries.iter()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drain every entry in order — how a per-worker segment empties into
    /// the daemon's main log during the parallel-tick merge.
    pub fn drain(&mut self) -> impl Iterator<Item = OpsEntry> + '_ {
        self.entries.drain(..)
    }

    /// Failure entries only — what a troubleshooting session greps for.
    pub fn failures(&self) -> impl Iterator<Item = &OpsEntry> {
        self.entries.iter().filter(|e| e.is_failure())
    }

    /// Render the tail of the log (most recent `n` entries).
    pub fn render_tail(&self, n: usize) -> String {
        self.entries
            .iter()
            .rev()
            .take(n)
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .map(|e| e.render())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// The `globusrun`-equivalent command line for a GRAM submission.
pub fn gram_submit_cmdline(site: &str, spec: &GramJobSpec) -> String {
    let manager = match spec.service {
        GramService::Fork => "jobmanager-fork",
        GramService::Batch => "jobmanager-pbs",
    };
    let mut rsl = format!(
        "&(executable={})(directory={})(count={})(maxWallTime={})",
        spec.executable,
        spec.workdir,
        spec.cores.max(1),
        spec.walltime.as_minutes().ceil() as u64,
    );
    if !spec.args.is_empty() {
        rsl.push_str(&format!("(arguments={})", spec.args.join(" ")));
    }
    for dep in &spec.depends_on {
        rsl.push_str(&format!("(dependsOn={dep})"));
    }
    format!("globusrun -b -r {site}/{manager} '{rsl}'")
}

/// The `globus-job-status`-equivalent poll command line.
pub fn gram_status_cmdline(handle: &str) -> String {
    format!("globus-job-status {handle}")
}

/// The `globus-url-copy`-equivalent transfer command line.
pub fn ftp_cmdline(site: &str, put: bool, local: &str, remote: &str) -> String {
    if put {
        format!("globus-url-copy file://{local} gsiftp://{site}/{remote}")
    } else {
        format!("globus-url-copy gsiftp://{site}/{remote} file://{local}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amp_grid::{GramJobHandle, SimDuration};

    fn spec() -> GramJobSpec {
        GramJobSpec {
            service: GramService::Batch,
            executable: "/amp/bin/mpikaia".into(),
            args: vec!["126".into(), "200".into(), "7".into()],
            workdir: "amp/sim3/run0".into(),
            cores: 128,
            walltime: SimDuration::from_hours(6.0),
            depends_on: vec![GramJobHandle::new("kraken", GramService::Batch, 9)],
            name: "sim3-WORK-r0c1".into(),
        }
    }

    #[test]
    fn cmdlines_are_copy_pasteable_globus_syntax() {
        let cmd = gram_submit_cmdline("kraken", &spec());
        assert!(cmd.starts_with("globusrun -b -r kraken/jobmanager-pbs '&"));
        assert!(cmd.contains("(executable=/amp/bin/mpikaia)"));
        assert!(cmd.contains("(count=128)"));
        assert!(cmd.contains("(maxWallTime=360)"));
        assert!(cmd.contains("(arguments=126 200 7)"));
        assert!(cmd.contains("dependsOn=gram://kraken/jobmanager-pbs/9"));

        assert_eq!(
            gram_status_cmdline("gram://kraken/jobmanager-pbs/42"),
            "globus-job-status gram://kraken/jobmanager-pbs/42"
        );
        assert!(ftp_cmdline(
            "kraken",
            true,
            "/tmp/obs.in",
            "amp/sim3/run0/observations.in"
        )
        .contains("gsiftp://kraken/amp/sim3/run0/observations.in"));
    }

    #[test]
    fn log_is_bounded_and_highlights_failures() {
        let mut log = OpsLog::with_capacity(3);
        for i in 0..5 {
            log.record(OpsEntry {
                at: i,
                simulation_id: Some(1),
                command: format!("cmd{i}"),
                outcome: OpOutcome::Ok,
            });
        }
        assert_eq!(log.len(), 3);
        assert!(log.entries().next().unwrap().command == "cmd2");

        log.record(OpsEntry {
            at: 9,
            simulation_id: None,
            command: "globusrun -b -r kraken/jobmanager-pbs '&(...)'".into(),
            outcome: OpOutcome::Transient("GRAM on kraken unreachable".into()),
        });
        assert_eq!(log.failures().count(), 1);
        let tail = log.render_tail(2);
        assert!(tail.contains("WARN"));
        assert!(tail.contains("paste the line above"));
        assert!(tail.contains("$ globusrun"));
    }

    #[test]
    fn render_formats() {
        let ok = OpsEntry {
            at: 5,
            simulation_id: None,
            command: "globus-job-status x".into(),
            outcome: OpOutcome::Ok,
        };
        assert!(ok.render().starts_with("t=5 ok"));
        let failed = OpsEntry {
            outcome: OpOutcome::Failed("no such job".into()),
            ..ok.clone()
        };
        assert!(failed.render().contains("ERROR"));
        assert!(failed.is_failure());
        assert!(!ok.is_failure());
    }
}
