//! The direct-model-run derived workflow (§2: "trivial to configure and
//! execute: five floating-point parameters as input, 10–15 minutes on a
//! single processor, a few kilobytes of output").
//!
//! Per the paper's design, this module contains *only* the job-definition
//! and postprocessing code; everything else lives in the base workflow.
//! All science-specific handling (input-file rendering, artifact
//! validation) is delegated to the simulation's [`ScienceApp`], so this
//! engine is application-agnostic.
//!
//! [`ScienceApp`]: amp_core::app::ScienceApp

use amp_core::status::{JobPurpose, JobStatus};
use amp_core::SimPayload;

use crate::apps::files;
use crate::error::WorkflowError;
use crate::workflow::StageCtx;

fn params_of(ctx: &StageCtx<'_>) -> Result<serde_json::Value, WorkflowError> {
    match ctx
        .sim
        .payload()
        .map_err(|e| WorkflowError::ModelFailure(e.to_string()))?
    {
        SimPayload::Direct { params } => Ok(params),
        _ => Err(WorkflowError::Daemon(
            "direct workflow on non-direct simulation".into(),
        )),
    }
}

/// Stage the parameter file and submit the model job.
pub fn submit_work(ctx: &mut StageCtx<'_>) -> Result<bool, WorkflowError> {
    if !ctx.jobs_of(JobPurpose::Work)?.is_empty() {
        return Ok(true); // already submitted (retried transition)
    }
    let app = ctx.app()?;
    let params = params_of(ctx)?;
    let input = app
        .model_input(&params)
        .map_err(WorkflowError::ModelFailure)?;
    let workdir = format!("{}/direct", ctx.workdir());
    ctx.stage_in(&format!("{workdir}/{}", files::PARAMS_IN), input)?;
    ctx.submit_batch(
        JobPurpose::Work,
        -1,
        0,
        &app.model_path(),
        vec![],
        app.resources().model_cores,
        workdir,
        vec![],
    )?;
    Ok(true)
}

/// Wait for the model job; failure is a model failure.
pub fn check_work(ctx: &mut StageCtx<'_>) -> Result<bool, WorkflowError> {
    let Some(job) = ctx.jobs_of(JobPurpose::Work)?.into_iter().next() else {
        // No job on record (e.g. an administrator deleted a failed one
        // while the simulation was held): resubmit and keep waiting.
        submit_work(ctx)?;
        return Ok(false);
    };
    match job.status {
        JobStatus::Done => {
            ctx.sim.progress = 1.0;
            Ok(true)
        }
        JobStatus::Failed => Err(WorkflowError::ModelFailure(job.detail)),
        JobStatus::Active => {
            ctx.sim.progress = 0.5;
            Ok(false)
        }
        _ => Ok(false),
    }
}

/// Pull the consolidated tar and extract the model output. The artifact is
/// stored verbatim — the engine validates it through the app but never
/// re-serializes it, so results are byte-identical to what the model wrote.
pub fn postprocess(ctx: &mut StageCtx<'_>) -> Result<bool, WorkflowError> {
    let app = ctx.app()?;
    let tar = ctx.stage_out(&format!("{}/{}", ctx.workdir(), files::RESULTS_TAR))?;
    let entries = amp_grid::SiteFs::untar(&tar)
        .map_err(|e| WorkflowError::ModelFailure(format!("corrupt results tar: {e}")))?;
    let out_path = format!("{}/direct/{}", ctx.workdir(), files::MODEL_OUT);
    let data = entries
        .iter()
        .find(|(p, _)| *p == out_path)
        .map(|(_, d)| d)
        .ok_or_else(|| {
            // "the absence of a mandatory output file" is the paper's
            // canonical model failure (§4.4)
            WorkflowError::ModelFailure(format!("mandatory output {out_path} missing"))
        })?;
    app.check_model_output(data)
        .map_err(|e| WorkflowError::ModelFailure(format!("result failed to parse: {e}")))?;
    ctx.sim.result_json = Some(String::from_utf8_lossy(data).into_owned());
    Ok(true)
}
