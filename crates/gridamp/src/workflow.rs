//! The Listing-1 workflow engine.
//!
//! The paper's entire workflow manager is a table from state to a list of
//! functions plus the next state: "If the job is in a particular state,
//! all of the functions in the subsequent list are called. If all return
//! True, then the job is set to the indicated next state." This module is
//! that table, verbatim:
//!
//! ```text
//! QUEUED  : ([check_queued_sim, submit_pre_job],                 PREJOB)
//! PREJOB  : ([check_pre_job,    submit_workjob],                 RUNNING)
//! RUNNING : ([check_workjob,    submit_post_job],                POSTJOB)
//! POSTJOB : ([check_post_job,   postprocess, submit_cleanup],    CLEANUP)
//! CLEANUP : ([check_cleanup,    close_simulation],               DONE)
//! ```
//!
//! The base stages here implement all routine functionality (queuing,
//! stage-in/out, fork scripts); only `submit_workjob` / `check_workjob` /
//! `postprocess` dispatch to the model-specific derived workflows
//! ([`crate::direct`], [`crate::optimize`]) — the paper's
//! inheritance-with-small-derived-classes design.

use std::sync::Arc;

use amp_core::app::{self, ScienceApp};
use amp_core::models::{AmpUser, GridJobRecord, Simulation};
use amp_core::status::{JobPurpose, JobStatus, SimStatus};
use amp_core::SimKind;
use amp_grid::{
    CommunityCredential, GramJobHandle, GramJobSpec, GramService, Grid, ProxyCertificate,
    SimDuration,
};
use amp_simdb::orm::Manager;
use amp_simdb::{Connection, Op, Query, Value};

use crate::apps::paths;
use crate::clilog::{ftp_cmdline, gram_submit_cmdline, OpOutcome, OpsEntry, OpsLog};
use crate::error::WorkflowError;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// This daemon process's identity in the lease table. Each member of
    /// a multi-daemon control plane needs a distinct id.
    pub daemon_id: String,
    /// Lease time-to-live in simulated seconds: how long a claimed
    /// simulation stays fenced to this daemon without renewal. Should be
    /// several poll intervals, so one missed tick never loses ownership.
    pub lease_ttl_secs: i64,
    /// Target system (AMP's production target was Kraken).
    pub site: String,
    /// Walltime requested for model (batch) jobs — "usually 6 or 24
    /// hours" (§6).
    pub work_walltime_hours: f64,
    /// Walltime for fork scripts.
    pub fork_walltime_minutes: f64,
    /// Proxy certificate lifetime.
    pub proxy_lifetime_hours: f64,
    /// §6 extension: submit continuation jobs up-front with scheduler
    /// dependencies instead of sequentially after each completion.
    pub job_chaining: bool,
    /// Consecutive transient failures on one simulation before escalating
    /// to HOLD (the paper retries indefinitely; a cap keeps tests finite).
    pub max_transient_retries: u32,
    /// Daemon poll interval in simulated seconds.
    pub poll_interval_secs: u64,
    /// Worker threads per tick. `1` (the default) runs the exact legacy
    /// sequential tick — the configuration the paper's daemon had; `N > 1`
    /// shards the per-tick work across `N` threads with per-simulation
    /// ownership and a deterministic merge.
    pub workers: usize,
    /// Exponential backoff base (in ticks) for the transient retry path:
    /// after `s` consecutive transient failures a simulation is next
    /// attempted `base * 2^(s-1)` ticks later (capped). `0` (the default)
    /// retries every tick — the paper's behavior.
    pub transient_backoff_base_ticks: u64,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            daemon_id: "gridamp-0".into(),
            lease_ttl_secs: 1800,
            site: "kraken".into(),
            work_walltime_hours: 24.0,
            fork_walltime_minutes: 10.0,
            proxy_lifetime_hours: 12.0,
            job_chaining: false,
            max_transient_retries: 1_000,
            poll_interval_secs: 300,
            workers: 1,
            transient_backoff_base_ticks: 0,
        }
    }
}

/// Everything a workflow stage function can touch.
///
/// The grid is shared (`&Grid`): every client call synchronizes
/// internally on per-site locks, so stage functions for different
/// simulations can run on parallel daemon workers against the same
/// substrate.
pub struct StageCtx<'a> {
    pub grid: &'a Grid,
    pub conn: &'a Connection,
    pub config: &'a DaemonConfig,
    pub cred: &'a CommunityCredential,
    pub sim: &'a mut Simulation,
    /// Username the proxy's SAML attribute carries (the sim owner).
    pub owner_username: String,
    /// The command-line transparency log (§4.4).
    pub ops: &'a mut OpsLog,
    /// The lease epoch under which this step runs (fencing token). `None`
    /// disables fencing — direct invocations outside the daemon loop.
    pub lease_epoch: Option<i64>,
}

impl StageCtx<'_> {
    pub fn now(&self) -> i64 {
        self.grid.now().as_secs() as i64
    }

    /// Fresh short-lived proxy attributed to the simulation owner
    /// (GridShib SAML, §3).
    pub fn proxy(&self) -> ProxyCertificate {
        self.cred.issue_proxy(
            &self.owner_username,
            self.grid.now(),
            SimDuration::from_hours(self.config.proxy_lifetime_hours),
        )
    }

    /// Remote scratch root for this simulation.
    pub fn workdir(&self) -> String {
        format!("amp/sim{}", self.sim.id.expect("saved sim"))
    }

    pub fn jobs(&self) -> Manager<GridJobRecord> {
        Manager::new(self.conn.clone())
    }

    pub fn sims(&self) -> Manager<Simulation> {
        Manager::new(self.conn.clone())
    }

    /// Resolve this simulation's science application from the registry. A
    /// simulation carrying an unregistered app id is a model failure (it
    /// can never make progress) rather than a transient.
    pub fn app(&self) -> Result<Arc<dyn ScienceApp>, WorkflowError> {
        app_of(self.sim)
    }

    /// All job records of one purpose for this simulation.
    pub fn jobs_of(&self, purpose: JobPurpose) -> Result<Vec<GridJobRecord>, WorkflowError> {
        Ok(self.jobs().filter(
            &Query::new()
                .eq("simulation_id", self.sim.id.expect("saved"))
                .eq("purpose", purpose.as_str())
                .order_by("ga_run")
                .order_by("continuation"),
        )?)
    }

    /// Verify this step still holds the lease it started under — the
    /// fencing-epoch guard. Re-reads the lease row immediately before any
    /// GRAM submission: a daemon that paused past its lease expiry finds
    /// the epoch bumped (or the row re-owned) and backs out with a
    /// transient error instead of double-submitting. The simulation is
    /// then retried by its new owner.
    fn check_fence(&mut self) -> Result<(), WorkflowError> {
        let Some(epoch) = self.lease_epoch else {
            return Ok(());
        };
        let sim_id = self.sim.id.expect("saved sim");
        let lease = crate::lease::current(self.conn, sim_id)?;
        let ok = lease
            .as_ref()
            .is_some_and(|l| l.daemon_id == self.config.daemon_id && l.epoch == epoch);
        if ok {
            return Ok(());
        }
        let holder = lease
            .map(|l| format!("{} at epoch {}", l.daemon_id, l.epoch))
            .unwrap_or_else(|| "nobody".to_string());
        let msg = format!("fenced: sim {sim_id} lease moved to {holder} (we held epoch {epoch})");
        amp_obs::counter("daemon_lease_fences_total").inc();
        amp_obs::flight().record("lease_fence", format!("t={} {}", self.now(), msg));
        Err(WorkflowError::Transient(msg))
    }

    /// Submit a fork script job (idempotent: returns the existing record
    /// if one was already submitted for this purpose).
    pub fn submit_fork(
        &mut self,
        purpose: JobPurpose,
        executable: &str,
        args: Vec<String>,
    ) -> Result<GridJobRecord, WorkflowError> {
        if let Some(existing) = self.jobs_of(purpose)?.into_iter().next() {
            if existing.gram_handle.is_some() {
                return Ok(existing);
            }
        }
        self.check_fence()?;
        let workdir = self.workdir();
        let spec = GramJobSpec {
            service: GramService::Fork,
            executable: executable.to_string(),
            args,
            workdir: workdir.clone(),
            cores: 0,
            walltime: SimDuration::from_minutes(self.config.fork_walltime_minutes),
            depends_on: vec![],
            name: format!("sim{}-{}", self.sim.id.expect("saved"), purpose.as_str()),
        };
        let proxy = self.proxy();
        let handle = self.log_gram_submit(&proxy, spec)?;
        let mut rec = GridJobRecord::new(
            self.sim.id.expect("saved"),
            -1,
            purpose,
            0,
            &self.sim.system,
            0,
            &self.sim.app,
        );
        rec.gram_handle = Some(handle.to_string());
        rec.status = JobStatus::Pending;
        rec.submitted_at = Some(self.now());
        self.jobs().create(&mut rec)?;
        Ok(rec)
    }

    /// Submit a batch model job and record it. Idempotent on the job-state
    /// key `(simulation, app, purpose, ga_run, continuation)`: if a
    /// submitted record already exists — e.g. written by this simulation's
    /// new owner while we were paused — it is returned instead of
    /// re-submitting. The app qualifier keeps two applications' job chains
    /// from ever colliding on one key.
    #[allow(clippy::too_many_arguments)]
    pub fn submit_batch(
        &mut self,
        purpose: JobPurpose,
        ga_run: i64,
        continuation: i64,
        executable: &str,
        args: Vec<String>,
        cores: u32,
        workdir: String,
        depends_on: Vec<GramJobHandle>,
    ) -> Result<GridJobRecord, WorkflowError> {
        let existing = self.jobs().first(
            &Query::new()
                .eq("simulation_id", self.sim.id.expect("saved"))
                .eq("app", self.sim.app.as_str())
                .eq("purpose", purpose.as_str())
                .eq("ga_run", ga_run)
                .eq("continuation", continuation),
        )?;
        if let Some(existing) = existing {
            if existing.gram_handle.is_some() {
                return Ok(existing);
            }
        }
        self.check_fence()?;
        let spec = GramJobSpec {
            service: GramService::Batch,
            executable: executable.to_string(),
            args,
            workdir,
            cores,
            walltime: SimDuration::from_hours(self.config.work_walltime_hours),
            depends_on,
            name: format!(
                "sim{}-{}-r{}c{}",
                self.sim.id.expect("saved"),
                purpose.as_str(),
                ga_run,
                continuation
            ),
        };
        let proxy = self.proxy();
        let handle = self.log_gram_submit(&proxy, spec)?;
        let mut rec = GridJobRecord::new(
            self.sim.id.expect("saved"),
            ga_run,
            purpose,
            continuation,
            &self.sim.system,
            cores as i64,
            &self.sim.app,
        );
        rec.gram_handle = Some(handle.to_string());
        rec.status = JobStatus::Pending;
        rec.submitted_at = Some(self.now());
        self.jobs().create(&mut rec)?;
        Ok(rec)
    }

    /// Submit via GRAM, recording the globusrun-equivalent command line
    /// (§4.4's copy-paste troubleshooting log).
    fn log_gram_submit(
        &mut self,
        proxy: &ProxyCertificate,
        spec: GramJobSpec,
    ) -> Result<GramJobHandle, WorkflowError> {
        let command = gram_submit_cmdline(&self.sim.system, &spec);
        let at = self.now();
        let sim_id = self.sim.id;
        match self.grid.gram_submit(&self.sim.system, proxy, spec) {
            Ok(handle) => {
                self.ops.record(OpsEntry {
                    at,
                    simulation_id: sim_id,
                    command,
                    outcome: OpOutcome::Ok,
                });
                Ok(handle)
            }
            Err(e) => {
                let outcome = if e.is_transient() {
                    OpOutcome::Transient(e.to_string())
                } else {
                    OpOutcome::Failed(e.to_string())
                };
                self.ops.record(OpsEntry {
                    at,
                    simulation_id: sim_id,
                    command,
                    outcome,
                });
                Err(e.into())
            }
        }
    }

    /// Stage a text file to the remote system via GridFTP.
    pub fn stage_in(&mut self, path: &str, content: String) -> Result<(), WorkflowError> {
        let proxy = self.proxy();
        let command = ftp_cmdline(&self.sim.system, true, "/var/amp/staging", path);
        let at = self.now();
        let sim_id = self.sim.id;
        match self
            .grid
            .ftp_put(&self.sim.system, &proxy, path, content.into_bytes())
        {
            Ok(_) => {
                self.ops.record(OpsEntry {
                    at,
                    simulation_id: sim_id,
                    command,
                    outcome: OpOutcome::Ok,
                });
                Ok(())
            }
            Err(e) => {
                let outcome = if e.is_transient() {
                    OpOutcome::Transient(e.to_string())
                } else {
                    OpOutcome::Failed(e.to_string())
                };
                self.ops.record(OpsEntry {
                    at,
                    simulation_id: sim_id,
                    command,
                    outcome,
                });
                Err(e.into())
            }
        }
    }

    /// Fetch a remote file via GridFTP. (Fetch misses of optional files are
    /// routine — see `optimize::try_stage_out` — so only transport-level
    /// failures are highlighted in the ops log.)
    pub fn stage_out(&mut self, path: &str) -> Result<Vec<u8>, WorkflowError> {
        let proxy = self.proxy();
        let command = ftp_cmdline(&self.sim.system, false, "/var/amp/staging", path);
        let at = self.now();
        let sim_id = self.sim.id;
        match self.grid.ftp_get(&self.sim.system, &proxy, path) {
            Ok((data, _)) => {
                self.ops.record(OpsEntry {
                    at,
                    simulation_id: sim_id,
                    command,
                    outcome: OpOutcome::Ok,
                });
                Ok(data)
            }
            Err(e) => {
                if e.is_transient() {
                    self.ops.record(OpsEntry {
                        at,
                        simulation_id: sim_id,
                        command,
                        outcome: OpOutcome::Transient(e.to_string()),
                    });
                }
                Err(e.into())
            }
        }
    }

    /// Check a fork-job purpose: Ok(true) done, Ok(false) still going,
    /// model failure on a failed script.
    fn fork_done(&self, purpose: JobPurpose) -> Result<bool, WorkflowError> {
        let Some(rec) = self.jobs_of(purpose)?.into_iter().next() else {
            return Ok(false);
        };
        match rec.status {
            JobStatus::Done => Ok(true),
            JobStatus::Failed => Err(WorkflowError::ModelFailure(format!(
                "{} script failed: {}",
                purpose.as_str(),
                rec.detail
            ))),
            _ => Ok(false),
        }
    }
}

/// A named stage function — names mirror Listing 1.
pub struct StageDef {
    pub name: &'static str,
    pub run: fn(&mut StageCtx<'_>) -> Result<bool, WorkflowError>,
}

/// The workflow definition — Listing 1, verbatim.
pub fn workflow_table() -> Vec<(SimStatus, Vec<StageDef>, SimStatus)> {
    vec![
        (
            SimStatus::Queued,
            vec![
                StageDef {
                    name: "check_queued_sim",
                    run: check_queued_sim,
                },
                StageDef {
                    name: "submit_pre_job",
                    run: submit_pre_job,
                },
            ],
            SimStatus::PreJob,
        ),
        (
            SimStatus::PreJob,
            vec![
                StageDef {
                    name: "check_pre_job",
                    run: check_pre_job,
                },
                StageDef {
                    name: "submit_workjob",
                    run: submit_workjob,
                },
            ],
            SimStatus::Running,
        ),
        (
            SimStatus::Running,
            vec![
                StageDef {
                    name: "check_workjob",
                    run: check_workjob,
                },
                StageDef {
                    name: "submit_post_job",
                    run: submit_post_job,
                },
            ],
            SimStatus::PostJob,
        ),
        (
            SimStatus::PostJob,
            vec![
                StageDef {
                    name: "check_post_job",
                    run: check_post_job,
                },
                StageDef {
                    name: "postprocess",
                    run: postprocess,
                },
                StageDef {
                    name: "submit_cleanup",
                    run: submit_cleanup,
                },
            ],
            SimStatus::Cleanup,
        ),
        (
            SimStatus::Cleanup,
            vec![
                StageDef {
                    name: "check_cleanup",
                    run: check_cleanup,
                },
                StageDef {
                    name: "close_simulation",
                    run: close_simulation,
                },
            ],
            SimStatus::Done,
        ),
    ]
}

/// Run one workflow step for a simulation: execute the stage list for its
/// current state; if every function returns true, transition. Returns the
/// new state on transition.
pub fn step(ctx: &mut StageCtx<'_>) -> Result<Option<SimStatus>, WorkflowError> {
    let table = workflow_table();
    let Some((_, stages, next)) = table.into_iter().find(|(s, _, _)| *s == ctx.sim.status) else {
        return Ok(None); // DONE or HOLD: nothing to run
    };
    for stage in &stages {
        if !(stage.run)(ctx)? {
            return Ok(None);
        }
    }
    ctx.sim.status = next;
    Ok(Some(next))
}

// ---- base stages (the paper's workflow-manager base class) ----

fn check_queued_sim(ctx: &mut StageCtx<'_>) -> Result<bool, WorkflowError> {
    // Sanity: payload must decode and the app must be registered; a
    // corrupt request is a model failure.
    ctx.sim
        .payload()
        .map_err(|e| WorkflowError::ModelFailure(e.to_string()))?;
    ctx.app()?;
    Ok(ctx.sim.status == SimStatus::Queued)
}

fn submit_pre_job(ctx: &mut StageCtx<'_>) -> Result<bool, WorkflowError> {
    ctx.submit_fork(JobPurpose::PreJob, paths::PREJOB, vec![])?;
    Ok(true)
}

fn check_pre_job(ctx: &mut StageCtx<'_>) -> Result<bool, WorkflowError> {
    ctx.fork_done(JobPurpose::PreJob)
}

fn submit_workjob(ctx: &mut StageCtx<'_>) -> Result<bool, WorkflowError> {
    let started = match ctx.sim.kind {
        SimKind::Direct => crate::direct::submit_work(ctx)?,
        SimKind::Optimization => crate::optimize::submit_work(ctx)?,
    };
    if started {
        ctx.sim.started_at = Some(ctx.now());
    }
    Ok(started)
}

fn check_workjob(ctx: &mut StageCtx<'_>) -> Result<bool, WorkflowError> {
    match ctx.sim.kind {
        SimKind::Direct => crate::direct::check_work(ctx),
        SimKind::Optimization => crate::optimize::check_work(ctx),
    }
}

fn submit_post_job(ctx: &mut StageCtx<'_>) -> Result<bool, WorkflowError> {
    let root = ctx.workdir();
    ctx.submit_fork(JobPurpose::PostJob, paths::POSTJOB, vec![root])?;
    Ok(true)
}

fn check_post_job(ctx: &mut StageCtx<'_>) -> Result<bool, WorkflowError> {
    ctx.fork_done(JobPurpose::PostJob)
}

fn postprocess(ctx: &mut StageCtx<'_>) -> Result<bool, WorkflowError> {
    let done = match ctx.sim.kind {
        SimKind::Direct => crate::direct::postprocess(ctx)?,
        SimKind::Optimization => crate::optimize::postprocess(ctx)?,
    };
    if done {
        charge_service_units(ctx)?;
        mark_star_has_results(ctx)?;
    }
    Ok(done)
}

fn submit_cleanup(ctx: &mut StageCtx<'_>) -> Result<bool, WorkflowError> {
    ctx.submit_fork(JobPurpose::Cleanup, paths::CLEANUP, vec![])?;
    Ok(true)
}

fn check_cleanup(ctx: &mut StageCtx<'_>) -> Result<bool, WorkflowError> {
    if !ctx.fork_done(JobPurpose::Cleanup)? {
        return Ok(false);
    }
    // "A final cleanup stage ensures that the execution environment has
    // been removed" — verify-and-remove on the remote scratch.
    let root = ctx.workdir();
    let system = ctx.sim.system.clone();
    if let Some(mut site) = ctx.grid.site_mut(&system) {
        crate::apps::cleanup_tree(&mut site.fs, &root);
    }
    Ok(true)
}

fn close_simulation(ctx: &mut StageCtx<'_>) -> Result<bool, WorkflowError> {
    ctx.sim.completed_at = Some(ctx.now());
    ctx.sim.progress = 1.0;
    ctx.sim.status_message.clear();
    Ok(true)
}

// ---- shared accounting helpers ----

/// Charge CPU-hours × SU factor for every completed computational job.
fn charge_service_units(ctx: &mut StageCtx<'_>) -> Result<(), WorkflowError> {
    use amp_core::models::Allocation;
    let su_factor = ctx
        .grid
        .site(&ctx.sim.system)
        .map(|s| s.profile.su_per_cpuh)
        .unwrap_or(0.0);
    let jobs = ctx.jobs().filter(
        &Query::new()
            .eq("simulation_id", ctx.sim.id.expect("saved"))
            .filter(
                "purpose",
                Op::In(vec![
                    Value::Text(JobPurpose::Work.as_str().into()),
                    Value::Text(JobPurpose::SolutionEvaluation.as_str().into()),
                ]),
                Value::Null,
            ),
    )?;
    let mut cpuh = 0.0;
    for j in &jobs {
        if let Some(run) = j.run_secs() {
            cpuh += (run as f64 / 3600.0) * j.cores as f64;
        }
    }
    let sus = cpuh * su_factor;
    let allocs = Manager::<Allocation>::new(ctx.conn.clone());
    let mut alloc = allocs.get(ctx.sim.allocation_id)?;
    if alloc.charge(sus).is_err() {
        // Over-spend is an administrative problem, not a reason to
        // withhold the user's results.
        ctx.sim.status_message = format!(
            "allocation {} exhausted while charging {:.0} SUs",
            alloc.account, sus
        );
        alloc.su_used = alloc.su_granted;
    }
    allocs.save(&alloc)?;
    Ok(())
}

fn mark_star_has_results(ctx: &mut StageCtx<'_>) -> Result<(), WorkflowError> {
    use amp_core::models::Star;
    let stars = Manager::<Star>::new(ctx.conn.clone());
    let mut star = stars.get(ctx.sim.star_id)?;
    if !star.has_results {
        star.has_results = true;
        stars.save(&star)?;
    }
    Ok(())
}

/// Look up the owning user's username (for proxy SAML attribution).
pub fn owner_username(conn: &Connection, sim: &Simulation) -> Result<String, WorkflowError> {
    let users = Manager::<AmpUser>::new(conn.clone());
    Ok(users.get(sim.owner_id)?.username)
}

/// Resolve a simulation's science application from the built-in registry.
pub fn app_of(sim: &Simulation) -> Result<Arc<dyn ScienceApp>, WorkflowError> {
    app::lookup(&sim.app)
        .ok_or_else(|| WorkflowError::ModelFailure(format!("unknown application {:?}", sim.app)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_listing_1() {
        let table = workflow_table();
        let shape: Vec<(SimStatus, Vec<&'static str>, SimStatus)> = table
            .iter()
            .map(|(s, fns, n)| (*s, fns.iter().map(|f| f.name).collect(), *n))
            .collect();
        assert_eq!(
            shape,
            vec![
                (
                    SimStatus::Queued,
                    vec!["check_queued_sim", "submit_pre_job"],
                    SimStatus::PreJob
                ),
                (
                    SimStatus::PreJob,
                    vec!["check_pre_job", "submit_workjob"],
                    SimStatus::Running
                ),
                (
                    SimStatus::Running,
                    vec!["check_workjob", "submit_post_job"],
                    SimStatus::PostJob
                ),
                (
                    SimStatus::PostJob,
                    vec!["check_post_job", "postprocess", "submit_cleanup"],
                    SimStatus::Cleanup
                ),
                (
                    SimStatus::Cleanup,
                    vec!["check_cleanup", "close_simulation"],
                    SimStatus::Done
                ),
            ]
        );
    }

    #[test]
    fn table_is_linear_and_complete() {
        let table = workflow_table();
        // each state's next is the following row's state; last is DONE
        for w in table.windows(2) {
            assert_eq!(w[0].2, w[1].0);
        }
        assert_eq!(table.last().unwrap().2, SimStatus::Done);
        // every non-terminal happy-path state is covered
        for s in SimStatus::happy_path() {
            if s != SimStatus::Done {
                assert!(table.iter().any(|(st, _, _)| *st == s), "{s} missing");
            }
        }
    }
}
