//! # AMP — a science-driven web-based application for the (simulated) TeraGrid
//!
//! Full-system Rust reproduction of *AMP: A Science-driven Web-based
//! Application for the TeraGrid* (Woitaszek, Metcalfe & Shorrock, GCE 2009,
//! arXiv:1011.6332). This facade crate re-exports the seven sub-systems;
//! see `DESIGN.md` for the inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured record.
//!
//! | crate | role |
//! |---|---|
//! | [`simdb`] | embedded typed relational DB + Django-style ORM (the central database) |
//! | [`stellar`] | ASTEC-like forward stellar model + observations + cost model |
//! | [`ga`] | MPIKAIA-style genetic algorithm with restart files |
//! | [`grid`] | discrete-event TeraGrid: schedulers, GRAM, GridFTP, credentials |
//! | [`core`] | shared AMP data models, marshaling, role matrix |
//! | [`gridamp`] | the workflow daemon (Listing 1, failure taxonomy, Gantt tool) |
//! | [`portal`] | the web gateway (HTTP, auth + CAPTCHA, catalog, admin, RSS) |
//! | [`obs`] | lock-free metrics registry, Prometheus rendering, flight recorder |
//!
//! ## Quickstart
//!
//! ```
//! use amp::prelude::*;
//!
//! // Deploy: database + simulated Kraken + installed AMP stack + daemon.
//! let mut dep = amp::gridamp::deploy(
//!     amp::grid::systems::kraken(),
//!     DaemonConfig::default(),
//!     None,
//! ).unwrap();
//!
//! // Seed a user/star/allocation/observation and submit a direct run.
//! let (user, star, alloc, _obs) =
//!     amp::gridamp::seed_fixtures(&dep.db, "kraken", &StellarParams::benchmark(), 1).unwrap();
//! let web = dep.db.connect(amp::core::roles::ROLE_WEB).unwrap();
//! let mut sim = Simulation::new_direct(star, user, StellarParams::benchmark(), "kraken", alloc, 0);
//! let sim_id = Manager::<Simulation>::new(web).create(&mut sim).unwrap();
//!
//! // Let the daemon drive it across the simulated grid.
//! dep.daemon.run_until_settled(&mut dep.grid, 48.0);
//! let admin = dep.db.connect(amp::core::roles::ROLE_ADMIN).unwrap();
//! let done = Manager::<Simulation>::new(admin).get(sim_id).unwrap();
//! assert_eq!(done.status, SimStatus::Done);
//! ```

pub use amp_core as core;
pub use amp_ga as ga;
pub use amp_grid as grid;
pub use amp_gridamp as gridamp;
pub use amp_obs as obs;
pub use amp_portal as portal;
pub use amp_simdb as simdb;
pub use amp_stellar as stellar;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use amp_core::models::{
        Allocation, AmpUser, GridJobRecord, Lease, Notification, Observation, Simulation, Star,
        SystemAuthorization,
    };
    pub use amp_core::{JobPurpose, JobStatus, OptimizationSpec, SimKind, SimStatus};
    pub use amp_ga::{Ga, GaConfig, Problem};
    pub use amp_grid::prelude::*;
    pub use amp_gridamp::{
        ClaimOutcome, DaemonConfig, DaemonMonitor, Deployment, GridAmp, LeaseHealth,
    };
    pub use amp_portal::{Portal, PortalConfig};
    pub use amp_simdb::orm::{Manager, Model};
    pub use amp_simdb::{Db, Query};
    pub use amp_stellar::{Domain, ModelOutput, ObservedStar, StellarParams};
}
