//! Offline stand-in for `rand`: the `RngCore`/`SeedableRng`/`RngExt`
//! trait surface with uniform range sampling over the integer and float
//! types the workspace draws from. Not the upstream value streams — the
//! workspace only relies on determinism and reasonable uniformity, both
//! of which hold here.

/// Core randomness source: a 64-bit word generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Seedable construction, including the `seed_from_u64` convenience used
/// throughout the workspace.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        // splitmix64 expansion, as upstream rand does
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Extension methods on any `RngCore` (upstream `Rng`/`RngExt`).
pub trait RngExt: RngCore {
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Map a raw word to [0, 1) with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in [0, span) via widening multiply (no modulo bias to
/// speak of at these span sizes).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_uint_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for ::std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for ::std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + bounded_u64(rng, span + 1) as $t
            }
        }
    )+};
}

impl_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for ::std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(bounded_u64(rng, span) as i64) as $t
            }
        }
        impl SampleRange<$t> for ::std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as i64 as $t;
                }
                (lo as i64).wrapping_add(bounded_u64(rng, span + 1) as i64) as $t
            }
        }
    )+};
}

impl_int_range!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for ::std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = unit_f64(rng.next_u64()) as $t;
                let v = self.start + (self.end - self.start) * unit;
                // guard against rounding up to the excluded endpoint
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for ::std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )+};
}

impl_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let a: u64 = rng.random_range(0..7);
            assert!(a < 7);
            let b: i32 = rng.random_range(-5..5);
            assert!((-5..5).contains(&b));
            let c: f64 = rng.random_range(0.25..0.5);
            assert!((0.25..0.5).contains(&c));
            let d: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            assert!((f64::MIN_POSITIVE..1.0).contains(&d));
            let e: u8 = rng.random_range(0..=3);
            assert!(e <= 3);
            let f: usize = rng.random_range(1..2);
            assert_eq!(f, 1);
        }
    }

    #[test]
    fn full_u64_range_inclusive() {
        let mut rng = Counter(7);
        let _: u64 = rng.random_range(0..=u64::MAX);
    }
}
