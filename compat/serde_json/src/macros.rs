//! The `json!` macro: a tt-muncher mirroring serde_json's construction
//! grammar (nested objects/arrays, expression values, dynamic keys).

#[macro_export]
macro_rules! json {
    ($($json:tt)+) => {
        $crate::json_internal!($($json)+)
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    //////////////////////////////////////////////////////////////////////
    // Array munching: accumulate elements in [..] until input is empty.
    //////////////////////////////////////////////////////////////////////

    (@array [$($elems:expr,)*]) => {
        ::std::vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        ::std::vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    //////////////////////////////////////////////////////////////////////
    // Object munching: collect key tts in (..) until ':', then the value.
    //////////////////////////////////////////////////////////////////////

    // Done.
    (@object $object:ident () () ()) => {};

    // Insert the current entry followed by a trailing comma.
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };

    // Insert the last entry without a trailing comma.
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };

    // Next value is `null`.
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    // Next value is `true`.
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    // Next value is `false`.
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    // Next value is an array.
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    // Next value is an object.
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    // Next value is an expression followed by a comma.
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    // Last value is an expression with no trailing comma.
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };

    // Fully parenthesized key.
    (@object $object:ident () (($key:expr) : $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($key) (: $($rest)*) (: $($rest)*));
    };

    // Munch one token into the current key.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    //////////////////////////////////////////////////////////////////////
    // Entry points.
    //////////////////////////////////////////////////////////////////////

    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(::std::vec::Vec::new())
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object($crate::Map::new())
    };
    ({ $($tt:tt)+ }) => {
        {
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            $crate::Value::Object(object)
        }
    };
    ($other:expr) => {
        $crate::to_value(&$other)
    };
}
