//! Offline stand-in for `serde_json`: a JSON `Value`, strict parser,
//! compact + pretty printers, `json!`, and the typed entry points
//! (`to_string`, `to_vec`, `from_str`, `from_slice`, `from_value`) wired
//! through the vendored `serde` stand-in's `Content` model.
//!
//! Floats print via Rust's shortest-roundtrip `Display`, which satisfies
//! the `float_roundtrip` behavior the workspace requests.

use serde::{Content, DeError, Deserialize, Serialize};
use std::fmt;

#[macro_use]
mod macros;
mod parse;
mod print;

/// JSON error (parse or data-shape mismatch).
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// A JSON number: integer-preserving like serde_json's.
#[derive(Debug, Clone, Copy)]
pub struct Number(pub(crate) N);

#[derive(Debug, Clone, Copy)]
pub(crate) enum N {
    I(i64),
    U(u64),
    F(f64),
}

impl Number {
    pub fn as_f64(&self) -> Option<f64> {
        match self.0 {
            N::I(v) => Some(v as f64),
            N::U(v) => Some(v as f64),
            N::F(v) => Some(v),
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::I(v) => Some(v),
            N::U(v) => i64::try_from(v).ok(),
            N::F(_) => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::I(v) => u64::try_from(v).ok(),
            N::U(v) => Some(v),
            N::F(_) => None,
        }
    }

    pub fn from_f64(v: f64) -> Option<Number> {
        v.is_finite().then_some(Number(N::F(v)))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.0, other.0) {
            (N::F(a), N::F(b)) => a == b,
            (N::F(_), _) | (_, N::F(_)) => false,
            // integers compare by value across signedness
            _ => match (self.as_i64(), other.as_i64()) {
                (Some(a), Some(b)) => a == b,
                _ => self.as_u64() == other.as_u64(),
            },
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            N::I(v) => write!(f, "{v}"),
            N::U(v) => write!(f, "{v}"),
            N::F(v) => {
                let s = format!("{v}");
                if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                    f.write_str(&s)
                } else {
                    // match serde_json: integral floats keep a ".0"
                    write!(f, "{s}.0")
                }
            }
        }
    }
}

/// Insertion-ordered string-keyed object map.
#[derive(Debug, Clone, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Map {
        Map::default()
    }

    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            return Some(std::mem::replace(&mut slot.1, value));
        }
        self.entries.push((key, value));
        None
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }
}

impl PartialEq for Map {
    fn eq(&self, other: &Self) -> bool {
        // map semantics: order-insensitive
        self.len() == other.len() && self.entries.iter().all(|(k, v)| other.get(k) == Some(v))
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&print::compact(self))
    }
}

// ------------------------------------------------------- Content bridging

pub(crate) fn value_to_content(v: &Value) -> Content {
    match v {
        Value::Null => Content::Null,
        Value::Bool(b) => Content::Bool(*b),
        Value::Number(n) => match n.0 {
            N::I(i) => Content::I64(i),
            N::U(u) => Content::U64(u),
            N::F(f) => Content::F64(f),
        },
        Value::String(s) => Content::Str(s.clone()),
        Value::Array(a) => Content::Seq(a.iter().map(value_to_content).collect()),
        Value::Object(m) => Content::Map(
            m.entries
                .iter()
                .map(|(k, v)| (k.clone(), value_to_content(v)))
                .collect(),
        ),
    }
}

pub(crate) fn content_to_value(c: &Content) -> Value {
    match c {
        Content::Null => Value::Null,
        Content::Bool(b) => Value::Bool(*b),
        Content::I64(i) => Value::Number(Number(N::I(*i))),
        Content::U64(u) => Value::Number(Number(N::U(*u))),
        Content::F64(f) => Value::Number(Number(N::F(*f))),
        Content::Str(s) => Value::String(s.clone()),
        Content::Seq(s) => Value::Array(s.iter().map(content_to_value).collect()),
        Content::Map(m) => {
            let mut map = Map::new();
            for (k, v) in m {
                map.insert(k.clone(), content_to_value(v));
            }
            Value::Object(map)
        }
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        value_to_content(self)
    }
}

impl Deserialize for Value {
    fn from_content(c: &Content) -> std::result::Result<Self, DeError> {
        Ok(content_to_value(c))
    }
}

macro_rules! impl_value_partial_eq {
    ($($t:ty => |$v:ident| $conv:expr),+ $(,)?) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                let $v = other;
                self == &$conv
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )+};
}

impl_value_partial_eq! {
    &str => |v| Value::String(v.to_string()),
    str => |v| Value::String(v.to_string()),
    String => |v| Value::String(v.clone()),
    bool => |v| Value::Bool(*v),
    i32 => |v| Value::Number(Number(N::I(*v as i64))),
    i64 => |v| Value::Number(Number(N::I(*v))),
    u64 => |v| Value::Number(Number(N::U(*v))),
    f64 => |v| Value::Number(Number(N::F(*v))),
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Number(Number(N::I(v)))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number(N::F(v)))
    }
}

// ------------------------------------------------------------ entry points

/// Convert any serializable value into a `Value` (used by `json!`).
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Value {
    content_to_value(&v.to_content())
}

pub fn from_value<T: Deserialize>(v: Value) -> Result<T> {
    Ok(T::from_content(&value_to_content(&v))?)
}

pub fn to_string<T: Serialize + ?Sized>(v: &T) -> Result<String> {
    Ok(print::compact_content(&v.to_content()))
}

pub fn to_string_pretty<T: Serialize + ?Sized>(v: &T) -> Result<String> {
    Ok(print::pretty_content(&v.to_content()))
}

pub fn to_vec<T: Serialize + ?Sized>(v: &T) -> Result<Vec<u8>> {
    to_string(v).map(String::into_bytes)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let content = parse::parse(s)?;
    Ok(T::from_content(&content)?)
}

pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes)
        .map_err(|e| Error(format!("invalid UTF-8 in JSON input: {e}")))?;
    from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let v = json!({"a": 1, "b": [true, null, 2.5], "c": {"d": "x"}});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(v["a"].as_i64(), Some(1));
        assert_eq!(v["b"][2].as_f64(), Some(2.5));
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn compact_format_matches_serde_json() {
        assert_eq!(to_string(&json!({"a": 1})).unwrap(), "{\"a\":1}");
        assert_eq!(to_string(&json!([1, 2])).unwrap(), "[1,2]");
        assert_eq!(to_string(&json!("x\"y")).unwrap(), "\"x\\\"y\"");
        assert_eq!(to_string(&json!(1.0)).unwrap(), "1.0");
        assert_eq!(to_string(&json!(null)).unwrap(), "null");
    }

    #[test]
    fn typed_roundtrip() {
        let entries: Vec<(String, Vec<u8>)> = vec![("a".into(), vec![1, 2]), ("b".into(), vec![])];
        let bytes = to_vec(&entries).unwrap();
        let back: Vec<(String, Vec<u8>)> = from_slice(&bytes).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn float_shortest_roundtrip() {
        for v in [0.1, 1.0 / 3.0, 1e-12, 123456.789, f64::MIN_POSITIVE] {
            let s = to_string(&v).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, v, "{s}");
        }
    }

    #[test]
    fn json_macro_shapes() {
        let n = 3;
        let items: Vec<i64> = vec![1, 2];
        let v = json!({
            "lit": "s",
            "expr": n + 1,
            "arr": items,
            "nested": {"inner": [1, {"deep": true}]},
            "empty_arr": [],
            "empty_obj": {}
        });
        assert_eq!(v["expr"].as_i64(), Some(4));
        assert_eq!(v["arr"].as_array().unwrap().len(), 2);
        assert_eq!(v["nested"]["inner"][1]["deep"].as_bool(), Some(true));
        // dynamic keys
        let key = "k".to_string();
        let dv = json!({ key.as_str(): 9 });
        assert_eq!(dv["k"].as_i64(), Some(9));
        // top-level forms
        assert_eq!(json!([]), Value::Array(vec![]));
        assert_eq!(json!(7).as_i64(), Some(7));
    }

    #[test]
    fn parse_errors_do_not_panic() {
        assert!(from_str::<Value>("{broken").is_err());
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn string_escapes() {
        let s = "tab\t nl\n quote\" back\\ unicode \u{1F600}é";
        let text = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
        // \uXXXX escapes parse too (incl. surrogate pairs)
        let parsed: String = from_str("\"a\\u0041\\ud83d\\ude00\"").unwrap();
        assert_eq!(parsed, "aA\u{1F600}");
    }
}
