//! Compact and pretty JSON writers over the `Content` tree.

use crate::Value;
use serde::Content;

pub(crate) fn compact(v: &Value) -> String {
    compact_content(&crate::value_to_content(v))
}

pub(crate) fn compact_content(c: &Content) -> String {
    let mut out = String::new();
    write_compact(&mut out, c);
    out
}

pub(crate) fn pretty_content(c: &Content) -> String {
    let mut out = String::new();
    write_pretty(&mut out, c, 0);
    out
}

fn write_compact(out: &mut String, c: &Content) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_compact(out, v);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, c: &Content, depth: usize) {
    match c {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, depth + 1);
                write_pretty(out, item, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, depth + 1);
                write_escaped(out, k);
                out.push_str(": ");
                write_pretty(out, v, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Floats keep a trailing `.0` when integral, matching serde_json's output.
fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        // serde_json emits null for non-finite floats
        out.push_str("null");
        return;
    }
    let s = format!("{v}");
    out.push_str(&s);
    if !s.contains('.') && !s.contains('e') {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
