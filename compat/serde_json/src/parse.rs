//! Strict recursive-descent JSON parser producing a `Content` tree.

use crate::Error;
use serde::Content;

pub(crate) fn parse(input: &str) -> Result<Content, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Content::Null),
            Some(b't') => self.literal("true", Content::Bool(true)),
            Some(b'f') => self.literal("false", Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Content::Seq(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Content::Map(entries)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // fast path: run of plain bytes
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => out.push(self.unicode_escape()?),
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn unicode_escape(&mut self) -> Result<char, Error> {
        let first = self.hex4()?;
        if (0xD800..0xDC00).contains(&first) {
            // high surrogate: must be followed by \uDC00..=\uDFFF
            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                return Err(self.err("unpaired surrogate in \\u escape"));
            }
            let second = self.hex4()?;
            if !(0xDC00..0xE000).contains(&second) {
                return Err(self.err("invalid low surrogate in \\u escape"));
            }
            let c = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
            char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"))
        } else if (0xDC00..0xE000).contains(&first) {
            Err(self.err("unpaired low surrogate in \\u escape"))
        } else {
            char::from_u32(first).ok_or_else(|| self.err("invalid \\u escape"))
        }
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let int_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == int_start {
            return Err(self.err("invalid number"));
        }
        // leading zeros are invalid JSON (except a lone 0)
        if self.pos - int_start > 1 && self.bytes[int_start] == b'0' {
            return Err(self.err("number with leading zero"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("number with empty fraction"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("number with empty exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            let v: f64 = text.parse().map_err(|_| self.err("unparseable float"))?;
            Ok(Content::F64(v))
        } else if negative {
            match text.parse::<i64>() {
                Ok(v) => Ok(Content::I64(v)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Content::F64)
                    .map_err(|_| self.err("unparseable integer")),
            }
        } else {
            match text.parse::<u64>() {
                Ok(v) => Ok(Content::U64(v)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Content::F64)
                    .map_err(|_| self.err("unparseable integer")),
            }
        }
    }
}
