//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! Hand-parses the derive input token stream (no syn/quote — this crate
//! must build offline with nothing but the standard library) and emits
//! impls over `serde::Content`. Supports the shapes this workspace uses:
//! plain structs, tuple/newtype/unit structs, and enums with unit, tuple,
//! and struct variants. The only field attribute honored is
//! `#[serde(skip)]` (omit on serialize, `Default::default()` on
//! deserialize).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

struct Field {
    name: String,
    skip: bool,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Input {
    NamedStruct(String, Vec<Field>),
    TupleStruct(String, usize),
    UnitStruct(String),
    Enum(String, Vec<Variant>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse(input) {
        Ok(parsed) => {
            let code = match mode {
                Mode::Serialize => gen_serialize(&parsed),
                Mode::Deserialize => gen_deserialize(&parsed),
            };
            code.parse().expect("serde_derive generated invalid Rust")
        }
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ------------------------------------------------------------------ parsing

/// Skip a `#[...]` attribute if one starts at `i`; returns the attribute's
/// bracket group when skipped.
fn take_attr(tokens: &[TokenTree], i: &mut usize) -> Option<TokenStream> {
    if let (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g))) =
        (tokens.get(*i), tokens.get(*i + 1))
    {
        if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket {
            *i += 2;
            return Some(g.stream());
        }
    }
    None
}

/// Does an attribute stream spell `serde(... skip ...)`?
fn attr_is_serde_skip(attr: &TokenStream) -> bool {
    let tokens: Vec<TokenTree> = attr.clone().into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip"))
        }
        _ => false,
    }
}

/// Skip visibility (`pub`, `pub(crate)`, ...) if present.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn parse(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut skips;
    loop {
        skips = false;
        while take_attr(&tokens, &mut i).is_some() {
            skips = true;
        }
        let before = i;
        skip_vis(&tokens, &mut i);
        if i == before && !skips {
            break;
        }
        if i == before {
            continue;
        }
    }

    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum keyword, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive stand-in does not support generic type `{name}`"
        ));
    }

    match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Input::NamedStruct(name, parse_named_fields(g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Input::TupleStruct(name, count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Input::UnitStruct(name)),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Input::Enum(name, parse_variants(g.stream())?))
            }
            other => Err(format!("unsupported enum body: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Parse `attrs vis name: Type, ...` named fields.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut skip = false;
        while let Some(attr) = take_attr(&tokens, &mut i) {
            skip |= attr_is_serde_skip(&attr);
        }
        skip_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        // Skip the type: tokens until a comma at angle-bracket depth 0.
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, skip });
    }
    Ok(fields)
}

/// Count `Type, Type, ...` entries in a tuple struct/variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => count += 1,
            _ => {}
        }
    }
    // Tolerate a trailing comma.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while take_attr(&tokens, &mut i).is_some() {}
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(g.stream())?)
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the next comma.
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            while i < tokens.len()
                && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',')
            {
                i += 1;
            }
        }
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ------------------------------------------------------------------ codegen

fn gen_serialize(input: &Input) -> String {
    match input {
        Input::NamedStruct(name, fields) => {
            let mut body = String::from(
                "let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = ::std::vec::Vec::new();\n",
            );
            for f in fields.iter().filter(|f| !f.skip) {
                body.push_str(&format!(
                    "__m.push(({:?}.to_string(), ::serde::Serialize::to_content(&self.{})));\n",
                    f.name, f.name
                ));
            }
            body.push_str("::serde::Content::Map(__m)");
            impl_serialize(name, &body)
        }
        Input::TupleStruct(name, 1) => {
            impl_serialize(name, "::serde::Serialize::to_content(&self.0)")
        }
        Input::TupleStruct(name, n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            impl_serialize(
                name,
                &format!("::serde::Content::Seq(vec![{}])", elems.join(", ")),
            )
        }
        Input::UnitStruct(name) => impl_serialize(name, "::serde::Content::Null"),
        Input::Enum(name, variants) => {
            let mut arms = String::new();
            for v in variants {
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Content::Str({v:?}.to_string()),\n",
                        v = v.name
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{v}(__f0) => ::serde::Content::Map(vec![({v:?}.to_string(), ::serde::Serialize::to_content(__f0))]),\n",
                        v = v.name
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_content({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v}({binds}) => ::serde::Content::Map(vec![({v:?}.to_string(), ::serde::Content::Seq(vec![{elems}]))]),\n",
                            v = v.name,
                            binds = binds.join(", "),
                            elems = elems.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let binds: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        let entries: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "({:?}.to_string(), ::serde::Serialize::to_content({}))",
                                    f.name, f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Content::Map(vec![({v:?}.to_string(), ::serde::Content::Map(vec![{entries}]))]),\n",
                            v = v.name,
                            binds = binds.join(", "),
                            entries = entries.join(", ")
                        ));
                    }
                }
            }
            impl_serialize(name, &format!("match self {{\n{arms}}}"))
        }
    }
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n    fn to_content(&self) -> ::serde::Content {{\n{body}\n    }}\n}}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    match input {
        Input::NamedStruct(name, fields) => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{}: ::std::default::Default::default(),\n",
                        f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{}: ::serde::de_field(__m, {:?})?,\n",
                        f.name, f.name
                    ));
                }
            }
            let body = format!(
                "let __m = __c.as_map().ok_or_else(|| ::serde::DeError::custom(concat!(\"expected map for struct \", {name:?})))?;\n::std::result::Result::Ok({name} {{\n{inits}}})"
            );
            impl_deserialize(name, &body)
        }
        Input::TupleStruct(name, 1) => impl_deserialize(
            name,
            &format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_content(__c)?))"),
        ),
        Input::TupleStruct(name, n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&__s[{i}])?"))
                .collect();
            let body = format!(
                "let __s = __c.as_seq().ok_or_else(|| ::serde::DeError::custom(concat!(\"expected sequence for tuple struct \", {name:?})))?;\nif __s.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::custom(format!(\"expected {n} elements, found {{}}\", __s.len()))); }}\n::std::result::Result::Ok({name}({elems}))",
                elems = elems.join(", ")
            );
            impl_deserialize(name, &body)
        }
        Input::UnitStruct(name) => {
            impl_deserialize(name, &format!("::std::result::Result::Ok({name})"))
        }
        Input::Enum(name, variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                match &v.shape {
                    VariantShape::Unit => unit_arms.push_str(&format!(
                        "{v:?} => ::std::result::Result::Ok({name}::{v}),\n",
                        v = v.name
                    )),
                    VariantShape::Tuple(1) => data_arms.push_str(&format!(
                        "{v:?} => ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_content(__v)?)),\n",
                        v = v.name
                    )),
                    VariantShape::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_content(&__s[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "{v:?} => {{\nlet __s = __v.as_seq().ok_or_else(|| ::serde::DeError::custom(\"expected sequence for tuple variant\"))?;\nif __s.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::custom(\"wrong tuple variant arity\")); }}\n::std::result::Result::Ok({name}::{v}({elems}))\n}},\n",
                            v = v.name,
                            elems = elems.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            if f.skip {
                                inits.push_str(&format!(
                                    "{}: ::std::default::Default::default(),\n",
                                    f.name
                                ));
                            } else {
                                inits.push_str(&format!(
                                    "{}: ::serde::de_field(__mm, {:?})?,\n",
                                    f.name, f.name
                                ));
                            }
                        }
                        data_arms.push_str(&format!(
                            "{v:?} => {{\nlet __mm = __v.as_map().ok_or_else(|| ::serde::DeError::custom(\"expected map for struct variant\"))?;\n::std::result::Result::Ok({name}::{v} {{\n{inits}}})\n}},\n",
                            v = v.name
                        ));
                    }
                }
            }
            let body = format!(
                "match __c {{\n::serde::Content::Str(__s) => match __s.as_str() {{\n{unit_arms}__other => ::std::result::Result::Err(::serde::DeError::custom(format!(\"unknown variant `{{__other}}` of {name}\"))),\n}},\n::serde::Content::Map(__m) if __m.len() == 1 => {{\nlet (__k, __v) = &__m[0];\nmatch __k.as_str() {{\n{data_arms}__other => ::std::result::Result::Err(::serde::DeError::custom(format!(\"unknown variant `{{__other}}` of {name}\"))),\n}}\n}},\n__other => ::std::result::Result::Err(::serde::DeError::custom(format!(\"invalid content for enum {name}: {{:?}}\", __other))),\n}}"
            );
            impl_deserialize(name, &body)
        }
    }
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n    fn from_content(__c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n    }}\n}}\n"
    )
}
