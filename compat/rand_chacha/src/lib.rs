//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 keystream
//! generator behind the stand-in `rand` traits. Deterministic for a given
//! seed (the workspace's only requirement), though the word stream is not
//! bit-identical to upstream `rand_chacha`.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, keyed from a 32-byte seed.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    index: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0; // nonce
        state[15] = 0;
        let input = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(input.iter()) {
            *word = word.wrapping_add(*init);
        }
        self.buffer = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16, // force refill on first use
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(17);
        let mut b = ChaCha8Rng::seed_from_u64(17);
        let mut c = ChaCha8Rng::seed_from_u64(18);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..7 {
            a.next_u64();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn roughly_uniform_unit_samples() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.random_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
