//! Offline stand-in for `serde`, providing the subset this workspace uses:
//! `#[derive(Serialize, Deserialize)]` (re-exported from the companion
//! `serde_derive` stub) over a self-describing JSON-like `Content` tree.
//!
//! The data model follows serde's JSON conventions so `serde_json` behaves
//! identically for every type in this repository:
//! * structs serialize as maps keyed by field name;
//! * newtype structs are transparent;
//! * tuple structs with two or more fields serialize as sequences;
//! * unit enum variants serialize as their name string; data-carrying
//!   variants serialize externally tagged (`{"Variant": ...}`);
//! * `Option` maps `None` to null; `#[serde(skip)]` omits the field on
//!   serialization and fills it from `Default` on deserialization.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing value tree all (de)serialization passes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    Map(Vec<(String, Content)>),
}

impl Content {
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Content::I64(v) => Some(*v),
            Content::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Content::U64(v) => Some(*v),
            Content::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Content::F64(v) => Some(*v),
            Content::I64(v) => Some(*v as f64),
            Content::U64(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Content::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    pub fn custom(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

pub trait Serialize {
    fn to_content(&self) -> Content;
}

pub trait Deserialize: Sized {
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

/// Look up a struct field in a serialized map (used by derived impls).
pub fn de_field<T: Deserialize>(m: &[(String, Content)], key: &str) -> Result<T, DeError> {
    match m.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_content(v).map_err(|e| DeError(format!("field `{key}`: {e}"))),
        None => Err(DeError(format!("missing field `{key}`"))),
    }
}

// ---------------------------------------------------------------- primitives

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_bool()
            .ok_or_else(|| DeError(format!("expected bool, found {}", c.kind())))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v = c
                    .as_i64()
                    .ok_or_else(|| DeError(format!(
                        "expected integer, found {}", c.kind())))?;
                <$t>::try_from(v).map_err(|_| DeError(format!(
                    "integer {v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v = c
                    .as_u64()
                    .ok_or_else(|| DeError(format!(
                        "expected unsigned integer, found {}", c.kind())))?;
                <$t>::try_from(v).map_err(|_| DeError(format!(
                    "integer {v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_f64()
            .ok_or_else(|| DeError(format!("expected number, found {}", c.kind())))
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        f64::from_content(c).map(|v| v as f32)
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let s = c
            .as_str()
            .ok_or_else(|| DeError(format!("expected char, found {}", c.kind())))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(ch), None) => Ok(ch),
            _ => Err(DeError(format!("expected single char, found {s:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError(format!("expected string, found {}", c.kind())))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(()),
            other => Err(DeError(format!("expected null, found {}", other.kind()))),
        }
    }
}

// ------------------------------------------------------------- combinators

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError(format!("expected sequence, found {}", c.kind())))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let s = c.as_seq().ok_or_else(|| DeError(format!(
                    "expected tuple sequence, found {}", c.kind())))?;
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                if s.len() != LEN {
                    return Err(DeError(format!(
                        "expected tuple of {LEN}, found {} elements", s.len())));
                }
                Ok(($($t::from_content(&s[$n])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Map keys serialize as JSON object keys (strings), mirroring
/// serde_json's stringification of integer-keyed maps.
pub trait MapKey: Sized {
    fn to_key(&self) -> String;
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_string())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),+) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse().map_err(|_| {
                    DeError(format!("invalid {} map key: {key:?}", stringify!($t)))
                })
            }
        }
    )+};
}

impl_map_key_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_content()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_map()
            .ok_or_else(|| DeError(format!("expected map, found {}", c.kind())))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_content(v)?)))
            .collect()
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_content(&self) -> Content {
        // Sort keys so serialization is deterministic.
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_map()
            .ok_or_else(|| DeError(format!("expected map, found {}", c.kind())))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_content(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_content(&42u64.to_content()).unwrap(), 42);
        assert_eq!(i64::from_content(&(-5i64).to_content()).unwrap(), -5);
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u8>::from_content(&Content::Null).unwrap(), None);
        assert_eq!(
            Vec::<u8>::from_content(&vec![1u8, 2].to_content()).unwrap(),
            vec![1, 2]
        );
    }

    #[test]
    fn cross_width_integers() {
        // a u64-encoded value reads back as i64 and vice versa when in range
        assert_eq!(i64::from_content(&Content::U64(7)).unwrap(), 7);
        assert_eq!(u64::from_content(&Content::I64(7)).unwrap(), 7);
        assert!(u64::from_content(&Content::I64(-1)).is_err());
    }

    #[test]
    fn tuples_and_maps() {
        let v = ("a".to_string(), vec![1u8, 2]);
        let c = v.to_content();
        let back: (String, Vec<u8>) = Deserialize::from_content(&c).unwrap();
        assert_eq!(back, v);

        let mut m = BTreeMap::new();
        m.insert("k".to_string(), 3i64);
        let back: BTreeMap<String, i64> = Deserialize::from_content(&m.to_content()).unwrap();
        assert_eq!(back, m);
    }
}
