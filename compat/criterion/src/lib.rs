//! Offline stand-in for `criterion`: wall-clock measurement with the
//! `criterion_group!`/`criterion_main!`/`benchmark_group` surface the
//! workspace benches use. Reports min/median/mean per benchmark; no
//! statistical machinery, plots, or baseline storage.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level bench context.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        println!("\ngroup: {}", name.as_ref());
        BenchmarkGroup {
            _criterion: self,
            name: name.as_ref().to_string(),
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.default_sample_size;
        run_bench(id.as_ref(), samples, f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.default_sample_size = n.max(2);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.as_ref());
        run_bench(&label, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    // warm-up pass
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iterations: 0,
    };
    f(&mut bencher);

    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        if bencher.iterations > 0 {
            times.push(bencher.elapsed.as_secs_f64() / bencher.iterations as f64);
        }
    }
    if times.is_empty() {
        println!("  {label}: no measurements");
        return;
    }
    times.sort_by(|a, b| a.total_cmp(b));
    let min = times[0];
    let median = times[times.len() / 2];
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    println!(
        "  {label}: min {} / median {} / mean {} ({} samples)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean),
        times.len()
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Per-sample measurement driver handed to the bench closure.
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        let mut runs = 0usize;
        g.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            runs += 1;
        });
        g.finish();
        // warm-up + 3 samples
        assert_eq!(runs, 4);
    }
}
