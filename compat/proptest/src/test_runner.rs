//! Config, error type, RNG, and the case-execution loop behind `proptest!`.

use rand::RngCore;
use std::fmt;

/// Deterministic per-case RNG (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 64 }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail<S: Into<String>>(reason: S) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject<S: Into<String>>(reason: S) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

/// Drive `config.cases` deterministic cases through the closure built by
/// `proptest!`. The closure returns the formatted inputs (captured before
/// the body runs) plus the body's verdict. No shrinking: the failing
/// inputs are printed as generated.
pub fn run<F>(config: Config, mut case: F)
where
    F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
{
    for i in 0..config.cases {
        let seed = (i as u64)
            .wrapping_add(1)
            .wrapping_mul(0xD135_3481_E925_7D1D);
        let mut rng = TestRng::from_seed(seed);
        let (inputs, outcome) = case(&mut rng);
        match outcome {
            Ok(()) | Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(reason)) => {
                panic!("proptest case #{i} failed: {reason}\n  inputs: {inputs}")
            }
        }
    }
}
