//! Offline stand-in for `proptest`: deterministic value-based property
//! testing with the macro and strategy surface this workspace uses.
//! There is no shrinking — failures print the generated inputs directly.

pub mod strategy;
pub mod string;
pub mod test_runner;

pub use strategy::Strategy;

pub mod arbitrary {
    use crate::strategy::AnyStrategy;
    use crate::test_runner::TestRng;
    use rand::{RngCore, RngExt};
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized + std::fmt::Debug {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: PhantomData,
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // finite full-ish domain; tests only need variety
            rng.random_range(-1.0e12..1.0e12)
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            char::from_u32(rng.random_range(0u32..0xD800)).unwrap_or('\u{FFFD}')
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;

    /// Inclusive size bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` roughly a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.random_range(0..4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($config:expr) $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run($config, |__rng| {
                let mut __inputs = ::std::string::String::new();
                $(
                    let $arg = {
                        let __value = $crate::strategy::Strategy::generate(&($strat), __rng);
                        __inputs.push_str(&::std::format!(
                            "{} = {:?}; ",
                            ::std::stringify!($arg),
                            __value
                        ));
                        __value
                    };
                )+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                (__inputs, __outcome)
            });
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    (($config:expr)) => {};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "{} (`{:?}` != `{:?}`)",
                    ::std::format!($($fmt)+),
                    __l,
                    __r
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "assertion failed: `{:?}` != `{:?}`", __l, __r);
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn composite() -> impl Strategy<Value = (u8, String)> {
        (0u8..10, "[a-f]{1,4}").prop_map(|(n, s)| (n, s))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(a in 1u32..600, b in 5u16..240, flag in any::<bool>()) {
            prop_assert!((1..600).contains(&a));
            prop_assert!((5..240).contains(&b));
            let _ = flag;
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(any::<u8>(), 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
        }

        #[test]
        fn oneof_and_composites(pick in prop_oneof![Just(1u16), Just(2), Just(3)],
                                pair in composite(),
                                opt in crate::option::of(0i64..5)) {
            prop_assert!(matches!(pick, 1..=3));
            prop_assert!(pair.0 < 10);
            prop_assert!(pair.1.chars().all(|c| ('a'..='f').contains(&c)));
            if let Some(x) = opt {
                prop_assert!((0..5).contains(&x), "opt {x}");
            }
        }

        #[test]
        fn question_mark_works(x in 0u8..10) {
            let parsed: u8 = format!("{x}")
                .parse()
                .map_err(|e: std::num::ParseIntError| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(parsed, x);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case #")]
    fn failures_panic_with_inputs() {
        proptest! {
            fn inner(x in 0u8..4) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        inner();
    }
}
