//! `&str` patterns as string strategies. Supports the subset of regex
//! syntax the workspace uses: a single atom — a character class
//! `[...]` (with ranges and escapes) or `\PC` (printable, i.e. not a
//! control character) — followed by an optional `{m,n}` repetition.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngExt;

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let pattern = parse_pattern(self)
            .unwrap_or_else(|e| panic!("unsupported string pattern {self:?}: {e}"));
        let len = rng.random_range(pattern.min_len..=pattern.max_len);
        (0..len)
            .map(|_| {
                let idx = rng.random_range(0..pattern.alphabet.len());
                pattern.alphabet[idx]
            })
            .collect()
    }
}

struct Pattern {
    alphabet: Vec<char>,
    min_len: usize,
    max_len: usize,
}

/// Printable characters sampled for `\PC`: ASCII printables plus a few
/// multi-byte code points so encoders see real UTF-8.
fn printable_alphabet() -> Vec<char> {
    let mut chars: Vec<char> = (0x20u8..0x7f).map(|b| b as char).collect();
    chars.extend(['é', 'ß', 'λ', '→', '中', '😀']);
    chars
}

fn parse_pattern(pattern: &str) -> Result<Pattern, String> {
    let mut chars = pattern.chars().peekable();
    let alphabet = match chars.peek() {
        Some('[') => {
            chars.next();
            parse_class(&mut chars)?
        }
        Some('\\') => {
            chars.next();
            match (chars.next(), chars.next()) {
                (Some('P'), Some('C')) => printable_alphabet(),
                other => return Err(format!("unsupported escape atom {other:?}")),
            }
        }
        _ => return Err("expected '[' class or '\\PC' atom".into()),
    };
    if alphabet.is_empty() {
        return Err("empty character class".into());
    }
    let (min_len, max_len) = match chars.peek() {
        None => (1, 1),
        Some('{') => {
            chars.next();
            let rest: String = chars.collect();
            let body = rest
                .strip_suffix('}')
                .ok_or_else(|| "unterminated repetition".to_string())?;
            let (m, n) = body
                .split_once(',')
                .ok_or_else(|| "expected {m,n} repetition".to_string())?;
            let m: usize = m
                .trim()
                .parse()
                .map_err(|_| "bad repetition min".to_string())?;
            let n: usize = n
                .trim()
                .parse()
                .map_err(|_| "bad repetition max".to_string())?;
            if m > n {
                return Err("repetition min exceeds max".into());
            }
            (m, n)
        }
        Some(other) => return Err(format!("unexpected trailing character {other:?}")),
    };
    Ok(Pattern {
        alphabet,
        min_len,
        max_len,
    })
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<Vec<char>, String> {
    let mut members = Vec::new();
    loop {
        let c = chars
            .next()
            .ok_or_else(|| "unterminated class".to_string())?;
        match c {
            ']' => return Ok(members),
            '\\' => {
                let esc = chars.next().ok_or_else(|| "dangling escape".to_string())?;
                members.push(match esc {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other, // \\, \], \-, \' etc.
                });
            }
            first => {
                // range if a '-' follows and is not the closing member
                if chars.peek() == Some(&'-') {
                    let mut lookahead = chars.clone();
                    lookahead.next(); // consume '-'
                    match lookahead.peek() {
                        Some(&']') | None => members.push(first),
                        Some(&hi) => {
                            chars.next(); // '-'
                            chars.next(); // hi
                            if (hi as u32) < (first as u32) {
                                return Err(format!("inverted range {first}-{hi}"));
                            }
                            for cp in (first as u32)..=(hi as u32) {
                                if let Some(ch) = char::from_u32(cp) {
                                    members.push(ch);
                                }
                            }
                        }
                    }
                } else {
                    members.push(first);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alphabet_of(pattern: &str) -> Vec<char> {
        parse_pattern(pattern).unwrap().alphabet
    }

    #[test]
    fn classes_parse() {
        let a = alphabet_of("[a-c_]{1,3}");
        assert_eq!(a, vec!['a', 'b', 'c', '_']);
        let p = parse_pattern("[ -~{}%\n]{0,300}").unwrap();
        assert!(p.alphabet.contains(&' '));
        assert!(p.alphabet.contains(&'~'));
        assert!(p.alphabet.contains(&'{'));
        assert!(p.alphabet.contains(&'\n'));
        assert_eq!((p.min_len, p.max_len), (0, 300));
        let q = parse_pattern("[a-zA-Z0-9<>&\"']{0,60}").unwrap();
        assert!(q.alphabet.contains(&'<'));
        assert!(q.alphabet.contains(&'\''));
    }

    #[test]
    fn pc_atom() {
        let p = parse_pattern("\\PC{0,100}").unwrap();
        assert!(p.alphabet.contains(&'A'));
        assert!(!p.alphabet.contains(&'\n'));
        assert_eq!((p.min_len, p.max_len), (0, 100));
    }

    #[test]
    fn generated_strings_match_class() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..50 {
            let s = "[a-z/]{1,30}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 30);
            assert!(s.chars().all(|c| c == '/' || c.is_ascii_lowercase()), "{s}");
        }
    }
}
