//! The `Strategy` trait and core combinators. Value-based generation
//! with no shrinking: a failing case reports the inputs as generated.

use crate::test_runner::TestRng;
use rand::RngExt;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::rc::Rc;

pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, func: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, func }
    }

    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            reason,
            pred,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            generator: Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    source: S,
    func: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.func)(self.source.generate(rng))
    }
}

pub struct Filter<S, F> {
    source: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1000 candidates in a row",
            self.reason
        );
    }
}

/// Type-erased strategy; what `prop_oneof!` arms are coerced to.
pub struct BoxedStrategy<T> {
    generator: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            generator: Rc::clone(&self.generator),
        }
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.generator)(rng)
    }
}

/// Uniform choice among alternative strategies of a common value type.
pub struct Union<T> {
    variants: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(variants: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
        Union { variants }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.random_range(0..self.variants.len());
        self.variants[idx].generate(rng)
    }
}

// Numeric ranges are strategies, sampling through the rand stand-in.
impl<T> Strategy for std::ops::Range<T>
where
    T: Debug,
    std::ops::Range<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    T: Debug,
    std::ops::RangeInclusive<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Marker used by `any::<T>()`.
pub struct AnyStrategy<T> {
    pub(crate) _marker: PhantomData<T>,
}

impl<T: crate::arbitrary::Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
