//! Offline stand-in for `rayon`. The workspace uses rayon only for
//! `population.par_iter_mut().for_each(..)` in the GA evaluator; this
//! stand-in runs that sequentially. Daemon-level parallelism in this
//! codebase comes from the tick engine's worker pool, not from rayon.

pub mod prelude {
    /// Sequential drop-in for rayon's mutable parallel iterator.
    pub struct ParIterMut<'a, T>(std::slice::IterMut<'a, T>);

    impl<'a, T> ParIterMut<'a, T> {
        pub fn for_each<F: FnMut(&'a mut T)>(self, f: F) {
            self.0.for_each(f);
        }

        pub fn enumerate(self) -> std::iter::Enumerate<std::slice::IterMut<'a, T>> {
            self.0.enumerate()
        }
    }

    /// Sequential drop-in for rayon's shared parallel iterator.
    pub struct ParIter<'a, T>(std::slice::Iter<'a, T>);

    impl<'a, T> ParIter<'a, T> {
        pub fn for_each<F: FnMut(&'a T)>(self, f: F) {
            self.0.for_each(f);
        }

        pub fn map<O, F: FnMut(&'a T) -> O>(
            self,
            f: F,
        ) -> std::iter::Map<std::slice::Iter<'a, T>, F> {
            self.0.map(f)
        }
    }

    pub trait IntoParallelRefMutIterator<'a> {
        type Item;
        fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
    }

    pub trait IntoParallelRefIterator<'a> {
        type Item;
        fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
    }

    impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
            ParIterMut(self.iter_mut())
        }
    }

    impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for [T] {
        type Item = T;
        fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
            ParIterMut(self.iter_mut())
        }
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter(self.iter())
        }
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter(self.iter())
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn par_iter_mut_visits_everything() {
        let mut v = vec![1, 2, 3];
        v.par_iter_mut().for_each(|x| *x *= 10);
        assert_eq!(v, vec![10, 20, 30]);
    }

    #[test]
    fn par_iter_reads() {
        let v = vec![1, 2, 3];
        let mut sum = 0;
        v.par_iter().for_each(|x| sum += x);
        assert_eq!(sum, 6);
    }
}
