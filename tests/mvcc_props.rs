//! MVCC read-path properties and regressions.
//!
//! The engine's read side is lock-free: readers pin a published immutable
//! version of each table instead of taking the shard lock. These tests pin
//! down the contract that makes that safe to build on:
//!
//! 1. a pinned `ReadView` is *frozen* — its version stamps never move and
//!    its rows never tear, no matter how many transactions commit while it
//!    is held (property test over arbitrary commit-batch shapes);
//! 2. superseded versions are freed once the last view holding them drops
//!    (no unbounded version retention — watched through the
//!    `simdb_table_live_versions` gauge);
//! 3. `compact()` never blocks writers: it snapshots a pinned cut and
//!    truncates the WAL per table, so it completes even while an open
//!    transaction holds a table's write lock — and the in-flight
//!    transaction's records survive the truncation and recover;
//! 4. plain reads never touch the shard lock: the writer-path lock-wait
//!    histogram records nothing during a pure-read phase;
//! 5. the write side's delta buffer is semantically invisible: reads
//!    inside a transaction see buffer-over-base, a commit publishes
//!    exactly the merged state, and a rollback leaves the published spine
//!    untouched — all equal to a single-threaded oracle applying the same
//!    operations (property test over arbitrary transaction sequences).

use amp::simdb::prelude::*;
use amp::simdb::Database;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::mpsc;
use std::time::Duration;

fn fresh_db(table: &str) -> Db {
    let db = Db::in_memory();
    db.define_role(Role::superuser("admin"));
    db.define_role(Role::new("app").grant(table, PermSet::ALL));
    let admin = db.connect("admin").unwrap();
    admin
        .create_table(TableSchema::new(
            table,
            vec![Column::new("v", ValueType::Int)],
        ))
        .unwrap();
    db
}

/// Drive a writer committing transactions of the given batch sizes while
/// readers continuously pin views, and assert every view is a frozen,
/// untorn commit-boundary state.
fn check_frozen_views(batches: &[usize]) {
    let db = fresh_db("mv");
    // Valid observable states: creation only, or any whole-batch prefix.
    let mut prefix_sums = BTreeSet::new();
    let mut sum = 0usize;
    prefix_sums.insert(0);
    for b in batches {
        sum += b;
        prefix_sums.insert(sum);
    }
    let total = sum;

    let writer = {
        let db = db.clone();
        let batches = batches.to_vec();
        std::thread::spawn(move || {
            let c = db.connect("app").unwrap();
            for (i, size) in batches.iter().enumerate() {
                c.transaction(&["mv"], |tx| {
                    for _ in 0..*size {
                        tx.insert("mv", &[("v", Value::Int(i as i64))])?;
                    }
                    Ok(())
                })
                .unwrap();
            }
        })
    };

    let c = db.connect("app").unwrap();
    let mut last_count = 0usize;
    loop {
        let view = c.read_view(&["mv"]).unwrap();
        let count = view.count("mv", &Query::new()).unwrap();
        let stamp = view.versions()[0];
        // Only commit-boundary states are observable (transactions publish
        // atomically), and the version counter moves in lockstep with the
        // rows: creation is 1, every insert bumps by exactly 1.
        assert!(
            prefix_sums.contains(&count),
            "torn commit: saw {count} rows, valid states are {prefix_sums:?}"
        );
        assert_eq!(stamp, 1 + count as u64, "stamp out of sync with rows");
        // No batch is ever partially visible.
        let rows = view.select("mv", &Query::new()).unwrap();
        for (i, size) in batches.iter().enumerate() {
            let seen = rows
                .iter()
                .filter(|(_, r)| r[0] == Value::Int(i as i64))
                .count();
            assert!(
                seen == 0 || seen == *size,
                "batch {i} torn: {seen} of {size} rows visible"
            );
        }
        // The view is frozen: re-reading it after more commits may have
        // landed yields byte-identical state.
        std::thread::yield_now();
        assert_eq!(view.count("mv", &Query::new()).unwrap(), count);
        assert_eq!(view.versions()[0], stamp);
        // Successive views are monotone (no time travel).
        assert!(count >= last_count);
        last_count = count;
        if count == total {
            break;
        }
    }
    writer.join().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: a pinned `ReadView` never observes version counters move
    /// or rows tear while concurrent transactions commit.
    #[test]
    fn pinned_views_are_frozen_and_untorn(batches in proptest::collection::vec(1usize..=5, 1..10)) {
        check_frozen_views(&batches);
    }
}

/// One operation inside a generated transaction. `t` selects one of the
/// two tables; `pick` resolves to a live row id at application time.
#[derive(Debug, Clone)]
enum TxOp {
    Insert { t: bool, v: i16 },
    Update { t: bool, pick: u8, v: i16 },
    Delete { t: bool, pick: u8 },
}

fn arb_tx_op() -> impl Strategy<Value = TxOp> {
    prop_oneof![
        (any::<bool>(), any::<i16>()).prop_map(|(t, v)| TxOp::Insert { t, v }),
        (any::<bool>(), any::<u8>(), any::<i16>()).prop_map(|(t, pick, v)| TxOp::Update {
            t,
            pick,
            v
        }),
        (any::<bool>(), any::<u8>()).prop_map(|(t, pick)| TxOp::Delete { t, pick }),
    ]
}

/// Drive the same transaction sequence through the buffered MVCC engine
/// and a single-threaded [`Database`] oracle, checking three things per
/// transaction:
///
/// 1. *buffer-over-base reads*: mid-transaction, `Txn::select` sees the
///    transaction's own uncommitted ops layered over the published base;
/// 2. *publish merges exactly*: after a commit, the published state equals
///    the oracle having applied the same ops;
/// 3. *rollback is total*: after an aborted transaction, the published
///    state (including id allocation) is exactly what it was before —
///    the write buffer is dropped, the spine untouched.
fn check_buffered_txns_match_oracle(txns: &[(Vec<TxOp>, bool)]) {
    let db = Db::in_memory();
    db.define_role(Role::superuser("admin"));
    let admin = db.connect("admin").unwrap();
    let mut oracle = Database::new();
    for t in ["bufa", "bufb"] {
        let schema = TableSchema::new(t, vec![Column::new("v", ValueType::Int)]);
        admin.create_table(schema.clone()).unwrap();
        oracle.create_table(schema).unwrap();
    }
    let name = |t: bool| if t { "bufa" } else { "bufb" };
    let all = Query::new();

    for (ops, rollback) in txns {
        // Resolve picks and apply against a tentative oracle as we go, so
        // an op may legitimately target a row inserted (or miss one
        // deleted) earlier in the same transaction.
        let mut tentative = oracle.clone();
        let result: Result<(), DbError> = admin.transaction(&["bufa", "bufb"], |tx| {
            for op in ops {
                match op {
                    TxOp::Insert { t, v } => {
                        let want = tentative
                            .insert(name(*t), &[("v", Value::Int(*v as i64))])
                            .unwrap()
                            .0;
                        let got = tx.insert(name(*t), &[("v", Value::Int(*v as i64))])?;
                        assert_eq!(got, want, "id allocation diverged from oracle");
                    }
                    TxOp::Update { t, pick, v } => {
                        let rows = tentative.select(name(*t), &all).unwrap();
                        if rows.is_empty() {
                            continue;
                        }
                        let id = rows[*pick as usize % rows.len()].0;
                        tentative
                            .update(name(*t), id, &[("v", Value::Int(*v as i64))])
                            .unwrap();
                        tx.update(name(*t), id, &[("v", Value::Int(*v as i64))])?;
                    }
                    TxOp::Delete { t, pick } => {
                        let rows = tentative.select(name(*t), &all).unwrap();
                        if rows.is_empty() {
                            continue;
                        }
                        let id = rows[*pick as usize % rows.len()].0;
                        tentative.delete(name(*t), id).unwrap();
                        tx.delete(name(*t), id)?;
                    }
                }
            }
            // Buffer-over-base: the transaction's own reads see its
            // uncommitted ops merged over the published base.
            for t in [true, false] {
                assert_eq!(
                    tx.select(name(t), &all).unwrap(),
                    tentative.select(name(t), &all).unwrap(),
                    "mid-transaction read diverged from buffered state"
                );
            }
            if *rollback {
                Err(DbError::Io("forced rollback".into()))
            } else {
                Ok(())
            }
        });
        assert_eq!(result.is_err(), *rollback);
        if !rollback {
            oracle = tentative;
        }
        // Published state must equal the oracle's committed state exactly —
        // after a rollback that means exactly the pre-transaction state.
        for t in [true, false] {
            assert_eq!(
                admin.select(name(t), &all).unwrap(),
                oracle.select(name(t), &all).unwrap(),
                "published state diverged from single-threaded oracle"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property: the per-transaction delta write-buffer is invisible in
    /// the result — buffered reads, committed merges, and rollbacks all
    /// match a single-threaded engine applying the same operations.
    #[test]
    fn buffered_transactions_match_single_threaded_oracle(
        txns in proptest::collection::vec(
            (proptest::collection::vec(arb_tx_op(), 0..8), any::<bool>()),
            0..12,
        )
    ) {
        check_buffered_txns_match_oracle(&txns);
    }
}

/// Regression: superseded versions are freed once the last `ReadView`
/// pinning them drops — retention is bounded by live views, observable via
/// the `simdb_table_live_versions{table}` gauge.
#[test]
fn dropping_last_read_view_frees_superseded_versions() {
    // The metrics registry is process-global and these integration tests
    // share one process, so this table name must be unique to this test.
    let table = "mv_retain";
    let db = fresh_db(table);
    let gauge = amp::obs::registry().gauge(&amp::obs::labeled(
        "simdb_table_live_versions",
        &[("table", table)],
    ));
    let c = db.connect("app").unwrap();
    c.insert(table, &[("v", Value::Int(0))]).unwrap();
    assert_eq!(gauge.get(), 1, "no views held: only the tip is alive");

    let view = c.read_view(&[table]).unwrap();
    for i in 1..=5 {
        c.insert(table, &[("v", Value::Int(i))]).unwrap();
    }
    // The view keeps exactly its pinned version alive alongside the tip;
    // the versions in between were freed as they were superseded.
    assert_eq!(gauge.get(), 2, "pinned version + tip");
    assert_eq!(view.count(table, &Query::new()).unwrap(), 1);

    drop(view);
    // The next publish prunes the version the view was keeping alive.
    c.insert(table, &[("v", Value::Int(6))]).unwrap();
    assert_eq!(gauge.get(), 1, "superseded version leaked past last view");
}

/// Regression: `compact()` never blocks writers (it used to take every
/// table's shared lock across file I/O, queueing all writers). It must
/// complete while an open transaction holds a table's *write* lock, and
/// the in-flight transaction's WAL records must survive the per-table
/// truncation and recover.
#[test]
fn compact_does_not_block_writers() {
    let dir = std::env::temp_dir().join(format!("simdb_mvcc_compact_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let db = Db::open(dir.join("db.snap"), dir.join("db.wal")).unwrap();
    db.define_role(Role::superuser("admin"));
    db.define_role(Role::new("app").grant("t", PermSet::ALL));
    let admin = db.connect("admin").unwrap();
    admin
        .create_table(TableSchema::new(
            "t",
            vec![Column::new("v", ValueType::Int)],
        ))
        .unwrap();
    for i in 0..200 {
        admin.insert("t", &[("v", Value::Int(i))]).unwrap();
    }

    // A transaction that holds t's write lock until released.
    let (started_tx, started_rx) = mpsc::channel();
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let txn = {
        let db = db.clone();
        std::thread::spawn(move || {
            let c = db.connect("app").unwrap();
            c.transaction(&["t"], |tx| {
                tx.insert("t", &[("v", Value::Int(1000))])?;
                started_tx.send(()).unwrap();
                release_rx.recv().unwrap(); // hold the write lock
                Ok(())
            })
            .unwrap();
        })
    };
    started_rx.recv().unwrap();

    // Compaction completes while the write lock is held: it reads pinned
    // versions, not the locked working state. Run it on a helper thread
    // with a timeout so a regression fails instead of hanging the suite.
    let (done_tx, done_rx) = mpsc::channel();
    let compactor = {
        let db = db.clone();
        std::thread::spawn(move || {
            let _ = done_tx.send(db.compact());
        })
    };
    done_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("compact() blocked behind an open write transaction")
        .unwrap();
    compactor.join().unwrap();

    // The uncommitted insert is invisible to the compacted snapshot...
    assert_eq!(
        admin.count("t", &Query::new()).unwrap(),
        200,
        "compaction must not expose uncommitted state"
    );
    release_tx.send(()).unwrap();
    txn.join().unwrap();
    // ...but commits fine afterwards: its WAL record sequences after the
    // snapshot's per-table coverage, so truncation preserved it.
    assert_eq!(admin.count("t", &Query::new()).unwrap(), 201);

    drop(admin);
    drop(db);
    let db = Db::open(dir.join("db.snap"), dir.join("db.wal")).unwrap();
    db.define_role(Role::superuser("admin"));
    let c = db.connect("admin").unwrap();
    assert_eq!(c.count("t", &Query::new()).unwrap(), 201);
    assert_eq!(
        c.count("t", &Query::new().eq("v", Value::Int(1000)))
            .unwrap(),
        1,
        "in-flight transaction's record lost by compaction truncate"
    );
}

/// The read path takes no lock at all: a pure-read phase records nothing
/// in the (writer-path-only) per-table lock-wait histogram.
#[test]
fn pure_reads_never_touch_the_lock() {
    let table = "mv_lockfree";
    let db = fresh_db(table);
    let c = db.connect("app").unwrap();
    for i in 0..50 {
        c.insert(table, &[("v", Value::Int(i))]).unwrap();
    }
    let wait = amp::obs::registry().histogram(
        &amp::obs::labeled("simdb_table_lock_wait_seconds", &[("table", table)]),
        amp::obs::Unit::Seconds,
    );
    let before = wait.count();
    for _ in 0..500 {
        assert_eq!(c.count(table, &Query::new()).unwrap(), 50);
        let view = c.read_view(&[table]).unwrap();
        assert_eq!(view.versions().len(), 1);
        assert_eq!(db.table_version(table), 51);
    }
    assert_eq!(wait.count(), before, "a plain read acquired a shard lock");
}
