//! C4 + full-stack integration: the complete user journey through the
//! portal's request handler — registration with the astronomy CAPTCHA,
//! administrator approval, star search with SIMBAD import, observation
//! upload, optimization submission, daemon execution, results and feeds.

use amp::portal::{Portal, PortalConfig, Request};
use amp::prelude::*;
use std::sync::Arc;

struct Rig {
    dep: amp::gridamp::Deployment,
    portal: Arc<Portal>,
}

fn rig() -> Rig {
    let dep = amp::gridamp::deploy(
        amp::grid::systems::kraken(),
        DaemonConfig {
            work_walltime_hours: 6.0,
            ..DaemonConfig::default()
        },
        None,
    )
    .unwrap();
    let portal = Arc::new(
        Portal::new(
            &dep.db,
            PortalConfig {
                admin_enabled: true,
                ..PortalConfig::default()
            },
        )
        .unwrap(),
    );
    Rig { dep, portal }
}

fn captcha_answer(form_html: &str) -> (usize, String) {
    let id: usize = form_html
        .split("name=\"captcha_id\" value=\"")
        .nth(1)
        .unwrap()
        .split('"')
        .next()
        .unwrap()
        .parse()
        .unwrap();
    let star = amp::stellar::famous_stars()
        .into_iter()
        .find(|s| form_html.contains(s.name.as_deref().unwrap_or("?")))
        .expect("captcha question names a famous star");
    (id, star.hd_number.unwrap().to_string())
}

fn cookie_of(resp: &amp::portal::Response) -> String {
    resp.headers
        .iter()
        .find(|(k, _)| k == "Set-Cookie")
        .map(|(_, v)| {
            v.split(';')
                .next()
                .unwrap()
                .trim_start_matches("amp_session=")
                .to_string()
        })
        .expect("session cookie")
}

#[test]
fn full_user_journey() {
    let mut r = rig();

    // fixtures the portal itself can't create: allocation + admin account
    let admin = r.dep.db.connect(amp::core::roles::ROLE_ADMIN).unwrap();
    let mut alloc = Allocation::new("kraken", "TG-AST090030", 500_000.0);
    Manager::<Allocation>::new(admin.clone())
        .create(&mut alloc)
        .unwrap();
    let mut boss = AmpUser::new(
        "boss",
        "b@x.edu",
        &amp::portal::hash_password("sup3rs3cret", "s"),
        0,
    );
    boss.approved = true;
    boss.is_admin = true;
    Manager::<AmpUser>::new(admin.clone())
        .create(&mut boss)
        .unwrap();

    // 1. register with the CAPTCHA
    let form = r
        .portal
        .handle(&Request::get("/accounts/register"))
        .body_str();
    let (cid, answer) = captcha_answer(&form);
    let resp = r.portal.handle(&Request::post(
        "/accounts/register",
        &[
            ("username", "astro1"),
            ("email", "astro1@obs.edu"),
            ("password", "pulsations"),
            ("captcha_id", &cid.to_string()),
            ("captcha_answer", &answer),
        ],
    ));
    assert_eq!(resp.status, 302, "{}", resp.body_str());

    // 2. admin approves + authorizes via the admin app
    let boss_login = r.portal.handle(&Request::post(
        "/accounts/login",
        &[("username", "boss"), ("password", "sup3rs3cret")],
    ));
    let boss_cookie = cookie_of(&boss_login);
    let astro = Manager::<AmpUser>::new(admin.clone())
        .first(&Query::new().eq("username", "astro1"))
        .unwrap()
        .unwrap();
    r.portal.handle(
        &Request::post(&format!("/admin/users/{}/approve", astro.id.unwrap()), &[])
            .with_cookie("amp_session", &boss_cookie),
    );
    r.portal.handle(
        &Request::post(
            "/admin/authorize",
            &[
                ("user_id", &astro.id.unwrap().to_string()),
                ("allocation_id", &alloc.id.unwrap().to_string()),
            ],
        )
        .with_cookie("amp_session", &boss_cookie),
    );

    // 3. astronomer logs in, finds a target (SIMBAD import), uploads data
    let login = r.portal.handle(&Request::post(
        "/accounts/login",
        &[("username", "astro1"), ("password", "pulsations")],
    ));
    assert_eq!(login.status, 302, "{}", login.body_str());
    let cookie = cookie_of(&login);

    let page = r
        .portal
        .handle(&Request::get("/stars/search?q=HD+10700").with_cookie("amp_session", &cookie));
    assert!(page.body_str().contains("added to the AMP catalog"));

    let truth = StellarParams {
        mass: 0.92,
        metallicity: 0.016,
        helium: 0.26,
        alpha: 1.8,
        age: 5.5,
    };
    let observed =
        amp::stellar::synthesize("HD 10700", &truth, &Domain::default(), 0.12, 8).unwrap();
    let mut modes = String::new();
    for m in &observed.modes {
        modes.push_str(&format!(
            "{} {} {:.4} {:.4}\n",
            m.l, m.n, m.frequency, m.sigma
        ));
    }
    let resp = r.portal.handle(
        &Request::post(
            "/star/HD%2010700/observations",
            &[
                ("modes", modes.as_str()),
                ("teff", "5350"),
                ("teff_sigma", "80"),
            ],
        )
        .with_cookie("amp_session", &cookie),
    );
    assert_eq!(resp.status, 302, "{}", resp.body_str());

    // 4. submit the optimization through the form
    let star = Manager::<Star>::new(admin.clone())
        .first(&Query::new().eq("identifier", "HD 10700"))
        .unwrap()
        .unwrap();
    let obs = Manager::<Observation>::new(admin.clone())
        .first(&Query::new().eq("star_id", star.id.unwrap()))
        .unwrap()
        .unwrap();
    let resp = r.portal.handle(
        &Request::post(
            &format!("/submit/optimization/{}", star.id.unwrap()),
            &[
                ("observation", &obs.id.unwrap().to_string()),
                ("ga_runs", "2"),
                ("generations", "30"),
                ("allocation", &alloc.id.unwrap().to_string()),
            ],
        )
        .with_cookie("amp_session", &cookie),
    );
    assert_eq!(resp.status, 302, "{}", resp.body_str());
    let sim_path = resp
        .headers
        .iter()
        .find(|(k, _)| k == "Location")
        .unwrap()
        .1
        .clone();

    // 5. the daemon runs it; the portal's status page follows along
    let mut saw_running = false;
    for _ in 0..3000 {
        r.dep.daemon.tick(&r.dep.grid);
        r.portal.set_now(r.dep.grid.now().as_secs() as i64);
        let page = r
            .portal
            .handle(&Request::get(&sim_path).with_cookie("amp_session", &cookie))
            .body_str();
        if page.contains("<b>RUNNING</b>") {
            saw_running = true;
        }
        if page.contains("<b>DONE</b>") {
            break;
        }
        r.dep.grid.advance(SimDuration::from_secs(900));
    }
    assert!(saw_running, "never observed RUNNING on the status page");
    let page = r
        .portal
        .handle(&Request::get(&sim_path).with_cookie("amp_session", &cookie))
        .body_str();
    assert!(page.contains("<b>DONE</b>"), "{page}");
    assert!(page.contains("Optimal model"));

    // 6. plot data + RSS + suggest now list the star with results
    let plots = r
        .portal
        .handle(&Request::get(&format!("{sim_path}/plots.json")));
    let v: serde_json::Value = serde_json::from_str(&plots.body_str()).unwrap();
    assert!(v["hr_track"].as_array().unwrap().len() >= 10);
    assert!(v["echelle"].as_array().unwrap().len() >= 30);

    let rss = r.portal.handle(&Request::get(&format!(
        "/feeds/star/{}.rss",
        star.id.unwrap()
    )));
    assert!(rss.body_str().contains("DONE"));

    let suggest = r.portal.handle(&Request::get("/api/suggest?q=HD+107"));
    let items: Vec<serde_json::Value> = serde_json::from_str(&suggest.body_str()).unwrap();
    assert!(items
        .iter()
        .any(|i| i["identifier"] == "HD 10700" && i["has_results"] == true));
}

#[test]
fn wrong_captcha_keeps_supermodels_out() {
    let r = rig();
    let form = r
        .portal
        .handle(&Request::get("/accounts/register"))
        .body_str();
    let (cid, _) = captcha_answer(&form);
    let resp = r.portal.handle(&Request::post(
        "/accounts/register",
        &[
            ("username", "fabulous"),
            ("email", "runway@example.com"),
            ("password", "modelmodel"),
            ("captcha_id", &cid.to_string()),
            ("captcha_answer", "gorgeous"),
        ],
    ));
    assert_eq!(resp.status, 403);
    let admin = r.dep.db.connect(amp::core::roles::ROLE_ADMIN).unwrap();
    assert!(Manager::<AmpUser>::new(admin)
        .first(&Query::new().eq("username", "fabulous"))
        .unwrap()
        .is_none());
}

#[test]
fn unapproved_users_cannot_submit() {
    let r = rig();
    let admin = r.dep.db.connect(amp::core::roles::ROLE_ADMIN).unwrap();
    let mut u = AmpUser::new(
        "newbie",
        "n@x.edu",
        &amp::portal::hash_password("password1", "s"),
        0,
    );
    u.approved = true; // can log in
    Manager::<AmpUser>::new(admin.clone())
        .create(&mut u)
        .unwrap();
    let mut star = Star::from_catalog(&amp::stellar::famous_stars()[0], "local");
    Manager::<Star>::new(admin.clone())
        .create(&mut star)
        .unwrap();
    let mut alloc = Allocation::new("kraken", "TG-Q", 1000.0);
    Manager::<Allocation>::new(admin.clone())
        .create(&mut alloc)
        .unwrap();

    let login = r.portal.handle(&Request::post(
        "/accounts/login",
        &[("username", "newbie"), ("password", "password1")],
    ));
    let cookie = cookie_of(&login);
    // logged in but NOT machine-authorized -> 403
    let resp = r.portal.handle(
        &Request::post(
            &format!("/submit/direct/{}", star.id.unwrap()),
            &[
                ("mass", "1.0"),
                ("metallicity", "0.02"),
                ("helium", "0.27"),
                ("alpha", "1.9"),
                ("age", "4.0"),
                ("allocation", &alloc.id.unwrap().to_string()),
            ],
        )
        .with_cookie("amp_session", &cookie),
    );
    assert_eq!(resp.status, 403);
}

#[test]
fn app_browser_lists_installed_applications() {
    let r = rig();
    let resp = r.portal.handle(&Request::get("/apps"));
    assert_eq!(resp.status, 200);
    let body = resp.body_str();
    assert!(body.contains("Asteroseismic Modeling"), "{body}");
    assert!(body.contains("/apps/curvefit"), "{body}");

    // The detail page renders the schema straight from the registry.
    let detail = r.portal.handle(&Request::get("/apps/curvefit"));
    assert_eq!(detail.status, 200);
    let body = detail.body_str();
    assert!(body.contains("Angular frequency"), "{body}");
    assert!(body.contains("/submit/curvefit/direct/"), "{body}");
}

#[test]
fn unknown_app_ids_get_a_clean_404_page() {
    let r = rig();
    let admin = r.dep.db.connect(amp::core::roles::ROLE_ADMIN).unwrap();
    let mut star = Star::from_catalog(&amp::stellar::famous_stars()[0], "local");
    Manager::<Star>::new(admin.clone())
        .create(&mut star)
        .unwrap();
    let star_id = star.id.unwrap();

    for path in [
        format!("/submit/warpdrive/direct/{star_id}"),
        format!("/submit/warpdrive/optimization/{star_id}"),
        "/apps/warpdrive".to_string(),
    ] {
        let resp = r.portal.handle(&Request::get(&path));
        assert_eq!(resp.status, 404, "{path}");
        let body = resp.body_str();
        // A layout page with navigation, not a bare "404 not found" line.
        assert!(body.contains("<html>"), "bare 404 for {path}: {body}");
        assert!(body.contains("warpdrive"), "{path}: {body}");
        assert!(body.contains("/apps"), "{path}: {body}");
    }
    // Submitting to an unknown application 404s before any form handling.
    let resp = r.portal.handle(&Request::post(
        &format!("/submit/warpdrive/direct/{star_id}"),
        &[("allocation", "1")],
    ));
    assert_eq!(resp.status, 404);

    // A simulation row whose application is no longer installed renders a
    // 404 page on its results route rather than a broken summary.
    let mut user = AmpUser::new("orphan", "o@x.edu", "h", 0);
    Manager::<AmpUser>::new(admin.clone())
        .create(&mut user)
        .unwrap();
    let mut alloc = Allocation::new("kraken", "TG-X", 1000.0);
    Manager::<Allocation>::new(admin.clone())
        .create(&mut alloc)
        .unwrap();
    let mut sim = Simulation::direct_for(
        "warpdrive",
        star_id,
        user.id.unwrap(),
        serde_json::json!({"dial": 11.0}),
        "kraken",
        alloc.id.unwrap(),
        0,
    );
    let sim_id = Manager::<Simulation>::new(admin).create(&mut sim).unwrap();
    let resp = r
        .portal
        .handle(&Request::get(&format!("/simulation/{sim_id}")));
    assert_eq!(resp.status, 404);
    assert!(resp.body_str().contains("warpdrive"));
}
