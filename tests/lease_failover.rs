//! Multi-daemon control plane under chaos: N GridAMP daemons share one
//! database through the lease table while the harness kills, pauses,
//! clock-skews, and restarts them mid-campaign — on top of transient
//! grid outages. The safety contract, asserted via the grid's audit log
//! and the job-state table:
//!
//! * **no simulation lost** — every submission still settles to DONE;
//! * **no GRAM job submitted twice** — the job-state keys stay unique
//!   and the audit log's submit count equals the recorded handles;
//! * **same final state** — status and results match a fault-free
//!   single-daemon reference run bit for bit.

mod common;

use std::collections::{HashMap, HashSet};
use std::sync::mpsc;

use amp::gridamp::{deploy_cluster, seed_fixtures, ClusterDeployment};
use amp::prelude::*;
use common::{truth, ChaosScheduler};

/// Shared config: short-ish leases so takeovers happen within a few
/// rounds of a daemon dying, but several poll intervals long so one
/// missed tick never loses ownership.
fn cluster_config() -> DaemonConfig {
    DaemonConfig {
        work_walltime_hours: 6.0,
        lease_ttl_secs: 1800,
        poll_interval_secs: 300,
        ..DaemonConfig::default()
    }
}

/// Seed the canonical mixed campaign: two direct runs and one small
/// optimization, all deterministic given `seed`.
fn seed_campaign(db: &Db, seed: u64) -> Vec<i64> {
    let (user, star, alloc, obs) = seed_fixtures(db, "kraken", &truth(), seed).unwrap();
    let web = db.connect(amp::core::roles::ROLE_WEB).unwrap();
    let sims = Manager::<Simulation>::new(web);
    let mut ids = Vec::new();
    let mut d1 = Simulation::new_direct(star, user, StellarParams::benchmark(), "kraken", alloc, 0);
    ids.push(sims.create(&mut d1).unwrap());
    let mut d2 = Simulation::new_direct(star, user, truth(), "kraken", alloc, 0);
    ids.push(sims.create(&mut d2).unwrap());
    let spec = OptimizationSpec {
        ga_runs: 2,
        population: 20,
        generations: 30,
        cores_per_run: 128,
        seed: 5,
    };
    let mut opt = Simulation::new_optimization(star, user, spec, obs, "kraken", alloc, 0);
    ids.push(sims.create(&mut opt).unwrap());
    ids
}

fn all_settled(db: &Db) -> bool {
    let admin = db.connect(amp::core::roles::ROLE_ADMIN).unwrap();
    Manager::<Simulation>::new(admin)
        .all()
        .map(|sims| {
            sims.iter()
                .all(|s| matches!(s.status, SimStatus::Done | SimStatus::Hold))
        })
        .unwrap_or(false)
}

/// `(sim id, status, result)` for every simulation — the timing-free
/// final state two runs of the same campaign must agree on.
fn final_states(db: &Db) -> Vec<(i64, String, Option<String>)> {
    let admin = db.connect(amp::core::roles::ROLE_ADMIN).unwrap();
    let mut sims = Manager::<Simulation>::new(admin).all().unwrap();
    sims.sort_by_key(|s| s.id);
    sims.iter()
        .map(|s| {
            (
                s.id.unwrap(),
                s.status.as_str().to_string(),
                s.result_json.clone(),
            )
        })
        .collect()
}

/// The duplicate-submission oracle: job-state keys — now including the
/// science application — are unique, and the grid saw exactly one GRAM
/// submit per recorded job handle.
fn assert_no_duplicate_submissions(db: &Db, grid: &amp::grid::Grid) {
    let admin = db.connect(amp::core::roles::ROLE_ADMIN).unwrap();
    let jobs = Manager::<GridJobRecord>::new(admin).all().unwrap();
    let mut keys = HashSet::new();
    for j in &jobs {
        assert!(
            keys.insert((
                j.app.as_str(),
                j.simulation_id,
                j.purpose.as_str(),
                j.ga_run,
                j.continuation
            )),
            "duplicate job-state row: app {} sim {} {} run {} cont {}",
            j.app,
            j.simulation_id,
            j.purpose.as_str(),
            j.ga_run,
            j.continuation
        );
    }
    let handles = jobs.iter().filter(|j| j.gram_handle.is_some()).count();
    let audit = grid.audit();
    let submits = audit
        .records()
        .iter()
        .filter(|r| r.action == "submit")
        .count();
    assert_eq!(
        submits, handles,
        "every GRAM submit must map to exactly one job record handle"
    );
}

/// Drive a daemon fleet round-robin under the chaos plan until every
/// simulation settles. Returns which daemon identities ever owned each
/// simulation (the takeover witness).
fn run_chaos(
    cluster: &mut ClusterDeployment,
    plan: amp_grid::DaemonFaultPlan,
    max_rounds: u64,
) -> HashMap<i64, HashSet<String>> {
    let mut chaos = ChaosScheduler::new(cluster.daemons.len(), plan);
    let mut owners: HashMap<i64, HashSet<String>> = HashMap::new();
    for round in 0..max_rounds {
        let runnable = chaos.begin_round(&cluster.db, &mut cluster.daemons);
        // Rotate the tick order so no daemon has a standing first-claim
        // advantage — ownership spreads across the fleet.
        for k in 0..runnable.len() {
            let i = runnable[(round as usize + k) % runnable.len()];
            cluster.daemons[i].tick(&cluster.grid);
            for sim in cluster.daemons[i].owned_sims() {
                owners
                    .entry(sim)
                    .or_default()
                    .insert(cluster.daemons[i].daemon_id().to_string());
            }
        }
        if all_settled(&cluster.db) {
            return owners;
        }
        cluster.grid.advance(SimDuration::from_secs(300));
    }
    panic!("campaign did not settle within {max_rounds} chaos rounds");
}

/// Fault-free single-daemon run of the same campaign: the reference
/// final state.
fn reference_run(seed: u64) -> Vec<(i64, String, Option<String>)> {
    let mut reference = deploy_cluster(amp::grid::systems::kraken(), cluster_config(), 1).unwrap();
    seed_campaign(&reference.db, seed);
    run_chaos(&mut reference, amp_grid::DaemonFaultPlan::none(), 10_000);
    assert_no_duplicate_submissions(&reference.db, &reference.grid);
    final_states(&reference.db)
}

fn chaos_campaign(seed: u64, fault_seed: u64, fault_count: usize) {
    let reference = reference_run(seed);

    let mut cluster = deploy_cluster(amp::grid::systems::kraken(), cluster_config(), 4).unwrap();
    seed_campaign(&cluster.db, seed);
    // grid-level chaos: six random 30-minute GRAM+GridFTP outages over
    // the first two days
    cluster.grid.faults.add_random_outages(
        "kraken",
        Service::Both,
        6,
        SimDuration::from_minutes(30.0),
        amp_grid::SimTime(2 * 86_400),
        fault_seed,
    );
    // daemon-level chaos: a scripted spine that guarantees a takeover
    // (the first claimer dies outright), plus seeded random faults
    let mut plan = amp_grid::DaemonFaultPlan::none();
    plan.add(4, 0, DaemonFault::Kill { down_ticks: 8 });
    plan.add(20, 1, DaemonFault::Pause { ticks: 3 });
    plan.add(28, 2, DaemonFault::ClockSkew { offset_secs: 600 });
    plan.add(60, 1, DaemonFault::Kill { down_ticks: 12 });
    plan.add_random_faults(4, 150, fault_count, fault_seed);

    let owners = run_chaos(&mut cluster, plan, 10_000);

    // no simulation lost: everything reached DONE despite the carnage
    let finals = final_states(&cluster.db);
    assert_eq!(finals.len(), 3);
    for (sim, status, _) in &finals {
        assert_eq!(status, SimStatus::Done.as_str(), "sim {sim} was lost");
    }
    // no GRAM job submitted twice
    assert_no_duplicate_submissions(&cluster.db, &cluster.grid);
    // failover actually happened: at least one simulation changed hands
    assert!(
        owners.values().any(|ids| ids.len() >= 2),
        "chaos plan produced no ownership handoff: {owners:?}"
    );
    // same final state as the fault-free single-daemon reference
    assert_eq!(finals, reference, "chaos run diverged from reference");
}

/// The CI smoke configuration: fixed seeds, 4 daemons, scripted kills +
/// 8 random faults.
#[test]
fn four_daemon_chaos_matches_single_daemon_reference() {
    chaos_campaign(1, 4242, 8);
}

/// Nightly-style long-run variant: a second seed and three times the
/// random fault load. Run with `cargo test -- --ignored`.
#[test]
#[ignore = "long-running chaos soak; run explicitly or in the nightly CI step"]
fn chaos_soak_second_seed_heavier_faults() {
    chaos_campaign(2, 777, 24);
}

/// Ground truth for the synthetic curve-fitting campaign.
fn curve_truth() -> amp::core::app::curvefit::CurveParams {
    amp::core::app::curvefit::CurveParams {
        amplitude: 1.4,
        decay: 0.25,
        omega: 4.0,
        phase: 0.6,
        offset: 0.3,
    }
}

/// Seed a two-application campaign: the stellar direct + optimization
/// trio next to a curvefit direct + optimization pair on the same
/// machine and allocation, all owned by the same user.
fn seed_mixed_campaign(db: &Db, seed: u64) -> Vec<i64> {
    let mut ids = seed_campaign(db, seed);
    let admin = db.connect(amp::core::roles::ROLE_ADMIN).unwrap();
    let user = Manager::<AmpUser>::new(admin.clone())
        .all()
        .unwrap()
        .first()
        .and_then(|u| u.id)
        .expect("seed_campaign created a user");
    let alloc = Manager::<Allocation>::new(admin)
        .all()
        .unwrap()
        .first()
        .and_then(|a| a.id)
        .expect("seed_campaign created an allocation");
    let (cf_star, cf_obs) =
        amp::gridamp::seed_curvefit_fixtures(db, user, &curve_truth(), seed).unwrap();

    let web = db.connect(amp::core::roles::ROLE_WEB).unwrap();
    let sims = Manager::<Simulation>::new(web);
    let params = serde_json::json!({
        "amplitude": 1.4, "decay": 0.25, "omega": 4.0, "phase": 0.6, "offset": 0.3
    });
    let mut cd = Simulation::direct_for("curvefit", cf_star, user, params, "kraken", alloc, 0);
    ids.push(sims.create(&mut cd).unwrap());
    let spec = OptimizationSpec {
        ga_runs: 2,
        population: 24,
        generations: 40,
        cores_per_run: 16,
        seed: seed.wrapping_add(11),
    };
    let mut copt =
        Simulation::optimization_for("curvefit", cf_star, user, spec, cf_obs, "kraken", alloc, 0);
    ids.push(sims.create(&mut copt).unwrap());
    ids
}

/// Per-app job counts — the witness that both applications actually
/// flowed through the shared daemon fleet.
fn jobs_per_app(db: &Db) -> HashMap<String, usize> {
    let admin = db.connect(amp::core::roles::ROLE_ADMIN).unwrap();
    let mut counts = HashMap::new();
    for j in Manager::<GridJobRecord>::new(admin).all().unwrap() {
        *counts.entry(j.app.clone()).or_insert(0) += 1;
    }
    counts
}

/// ISSUE 10 satellite: a mixed stellar + curvefit campaign through the
/// chaos harness. Daemons must never cross-submit between applications
/// (the job-state key now includes `app`), never lose a simulation of
/// either kind, and land on the same final state as a fault-free
/// single-daemon reference.
#[test]
fn mixed_app_campaign_survives_chaos_without_cross_app_duplicates() {
    let seed = 11;
    // Fault-free single-daemon reference of the same mixed campaign.
    let reference = {
        let mut r = deploy_cluster(amp::grid::systems::kraken(), cluster_config(), 1).unwrap();
        seed_mixed_campaign(&r.db, seed);
        run_chaos(&mut r, amp_grid::DaemonFaultPlan::none(), 10_000);
        assert_no_duplicate_submissions(&r.db, &r.grid);
        final_states(&r.db)
    };

    let mut cluster = deploy_cluster(amp::grid::systems::kraken(), cluster_config(), 3).unwrap();
    seed_mixed_campaign(&cluster.db, seed);
    cluster.grid.faults.add_random_outages(
        "kraken",
        Service::Both,
        4,
        SimDuration::from_minutes(30.0),
        amp_grid::SimTime(2 * 86_400),
        991,
    );
    let mut plan = amp_grid::DaemonFaultPlan::none();
    plan.add(4, 0, DaemonFault::Kill { down_ticks: 8 });
    plan.add(24, 1, DaemonFault::Pause { ticks: 3 });
    plan.add_random_faults(3, 150, 6, 991);

    let owners = run_chaos(&mut cluster, plan, 10_000);

    // No simulation of either application was lost.
    let finals = final_states(&cluster.db);
    assert_eq!(finals.len(), 5);
    for (sim, status, _) in &finals {
        assert_eq!(status, SimStatus::Done.as_str(), "sim {sim} was lost");
    }
    // Both applications actually ran jobs through the shared fleet, and
    // no GRAM job was submitted twice — within or across applications.
    let per_app = jobs_per_app(&cluster.db);
    assert!(
        per_app.get("stellar").copied().unwrap_or(0) > 0,
        "{per_app:?}"
    );
    assert!(
        per_app.get("curvefit").copied().unwrap_or(0) > 0,
        "{per_app:?}"
    );
    assert_no_duplicate_submissions(&cluster.db, &cluster.grid);
    // Failover happened, and the final state matches the reference.
    assert!(
        owners.values().any(|ids| ids.len() >= 2),
        "chaos plan produced no ownership handoff: {owners:?}"
    );
    assert_eq!(finals, reference, "mixed-app chaos run diverged");
}

/// The GC-pause double-submit scenario the fencing epoch exists for: a
/// daemon claims its leases, stalls past expiry *inside* a tick (so its
/// in-memory ownership map goes stale), a peer takes over, and the
/// sleeper resumes straight into a submission point the peer has not
/// reached yet. The fence must push it out; the audit log must show no
/// extra submit.
#[test]
fn gc_paused_daemon_is_fenced_out_of_submission() {
    let mut cluster = deploy_cluster(amp::grid::systems::kraken(), cluster_config(), 2).unwrap();
    let (user, star, alloc, _obs) = seed_fixtures(&cluster.db, "kraken", &truth(), 9).unwrap();
    let web = cluster.db.connect(amp::core::roles::ROLE_WEB).unwrap();
    let mut sim =
        Simulation::new_direct(star, user, StellarParams::benchmark(), "kraken", alloc, 0);
    let sim_id = Manager::<Simulation>::new(web).create(&mut sim).unwrap();

    let mut d1 = cluster.daemons.pop().unwrap();
    let mut d0 = cluster.daemons.pop().unwrap();

    // Pre-schedule the GRAM/GridFTP blackout that will pin the new owner
    // while d0 sleeps: from one hour after d0's pause until the moment
    // d0 is woken. Simulated time is fully scripted, so the window is
    // known in advance: pause at t=300, blackout [3900, 7500).
    cluster.grid.faults.add_outage(
        "kraken",
        Service::Both,
        amp_grid::SimTime(3900),
        amp_grid::SimTime(7500),
    );
    let grid = &cluster.grid;

    // t=0: d0 alone drives the sim QUEUED -> PREJOB and submits the fork
    // script — the only GRAM submit this test should ever see.
    d0.tick(grid);
    assert_eq!(d0.owned_sims(), vec![sim_id]);
    grid.advance(SimDuration::from_secs(300));

    // Install the stop-the-world hook: d0's next tick renews its lease
    // (good until t=2100), then parks between the claim phase and the
    // work phases with its ownership map already built — exactly the
    // stale-belief state a GC pause produces.
    let (entered_tx, entered_rx) = mpsc::channel::<()>();
    let (resume_tx, resume_rx) = mpsc::channel::<()>();
    d0.pause_point = Some(Box::new(move || {
        let _ = entered_tx.send(());
        let _ = resume_rx.recv();
    }));

    let fences_before = amp::obs::counter("daemon_lease_fences_total").get();
    let (d0, submits_during_pause) = std::thread::scope(|scope| {
        let handle = scope.spawn(move || {
            let mut d0 = d0;
            d0.tick(grid); // t=300: renew, then block in the hook
            d0
        });
        entered_rx.recv().expect("d0 reached its pause point");
        // t=3900: d0's lease is long expired; d1 takes over (a database
        // operation, immune to the blackout) but cannot poll the fork
        // job or submit anything — GRAM is dark, so the WORK submission
        // point stays unreached.
        grid.advance(SimDuration::from_secs(3600));
        d1.tick(grid);
        assert_eq!(d1.owned_sims(), vec![sim_id]);
        let audit_submits = grid
            .audit()
            .records()
            .iter()
            .filter(|r| r.action == "submit")
            .count();
        // t=7500: blackout over. Wake d0: it polls the fork job to DONE
        // and walks straight into the WORK submission point carrying its
        // stale epoch-1 belief. The fence must stop it.
        grid.advance(SimDuration::from_secs(3600));
        resume_tx.send(()).expect("resume d0");
        let d0 = handle.join().expect("d0 tick thread");
        (d0, audit_submits)
    });

    // The fence fired, and d0 submitted nothing: the audit log still
    // shows exactly the one fork submit from before the pause.
    assert!(
        amp::obs::counter("daemon_lease_fences_total").get() > fences_before,
        "expected the fencing guard to fire"
    );
    let submits_after = cluster
        .grid
        .audit()
        .records()
        .iter()
        .filter(|r| r.action == "submit")
        .count();
    assert_eq!(submits_after, submits_during_pause);
    assert_eq!(submits_after, 1, "only the pre-pause fork submit");
    drop(d0);

    // d1 now owns the campaign outright and drives it to completion.
    for _ in 0..200 {
        d1.tick(&cluster.grid);
        if all_settled(&cluster.db) {
            break;
        }
        cluster.grid.advance(SimDuration::from_secs(300));
    }
    let admin = cluster.db.connect(amp::core::roles::ROLE_ADMIN).unwrap();
    let done = Manager::<Simulation>::new(admin).get(sim_id).unwrap();
    assert_eq!(done.status, SimStatus::Done, "{}", done.status_message);
    assert_no_duplicate_submissions(&cluster.db, &cluster.grid);
}
