//! Concurrency tests for the sharded storage engine.
//!
//! The engine promises three things the old global `RwLock<Database>`
//! could give only by serializing everyone:
//!
//! 1. writers to *disjoint* tables run in parallel, and readers are never
//!    blocked by a writer on an unrelated table;
//! 2. per-table version counters are linearizable — every committed write
//!    bumps its table's counter exactly once, under the same exclusive
//!    lock as the data change, so `versions == creation + commits`;
//! 3. a multi-table `read_view` observes an untearable snapshot — a
//!    transaction writing tables A and B together can never be seen
//!    half-applied across them;
//!
//! plus (regression for the snapshot/compact fix) that snapshotting never
//! blocks readers. Since the MVCC read path landed, readers don't take
//! shard locks at all — they pin published table versions — so these
//! properties now hold by construction; the tests keep them pinned down
//! against regression (see `tests/mvcc_props.rs` for the MVCC-specific
//! properties: frozen views, version retention, non-blocking compact).

use amp::simdb::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// A three-table fixture: two independent tables (`alpha`, `beta`) for
/// disjoint-writer traffic, plus a `ledger` pair (`ledger_a`, `ledger_b`)
/// mutated only together by multi-table transactions.
fn setup() -> Db {
    let db = Db::in_memory();
    db.define_role(Role::superuser("admin"));
    db.define_role(
        Role::new("app")
            .grant("alpha", PermSet::ALL)
            .grant("beta", PermSet::ALL)
            .grant("ledger_a", PermSet::ALL)
            .grant("ledger_b", PermSet::ALL),
    );
    let admin = db.connect("admin").unwrap();
    for t in ["alpha", "beta", "ledger_a", "ledger_b"] {
        admin
            .create_table(TableSchema::new(t, vec![Column::new("v", ValueType::Int)]))
            .unwrap();
    }
    db
}

/// Portal-style readers + two writer threads on disjoint tables + one
/// multi-table transactor, all concurrent. Afterwards: no lost updates
/// (row counts match what each writer committed) and linearizable
/// per-table versions (creation + exactly one bump per committed write).
#[test]
fn stress_disjoint_writers_readers_and_transactor() {
    const WRITES: i64 = 300;
    const TXNS: i64 = 150;
    let db = setup();
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();

    // Two writers on disjoint tables.
    for table in ["alpha", "beta"] {
        let db = db.clone();
        handles.push(std::thread::spawn(move || {
            let c = db.connect("app").unwrap();
            for i in 0..WRITES {
                c.insert(table, &[("v", Value::Int(i))]).unwrap();
            }
        }));
    }

    // One multi-table transactor over the ledger pair.
    {
        let db = db.clone();
        handles.push(std::thread::spawn(move || {
            let c = db.connect("app").unwrap();
            for i in 0..TXNS {
                c.transaction(&["ledger_a", "ledger_b"], |tx| {
                    tx.insert("ledger_a", &[("v", Value::Int(i))])?;
                    tx.insert("ledger_b", &[("v", Value::Int(-i))])?;
                    Ok(())
                })
                .unwrap();
            }
        }));
    }

    // Portal-style readers over everything, until the writers finish.
    let mut readers = Vec::new();
    for _ in 0..4 {
        let db = db.clone();
        let stop = Arc::clone(&stop);
        readers.push(std::thread::spawn(move || {
            let c = db.connect("app").unwrap();
            let mut reads = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for t in ["alpha", "beta", "ledger_a", "ledger_b"] {
                    // Single-table reads and version stamps interleave
                    // with the writers; none of this can error or tear.
                    let n = c.count(t, &Query::new()).unwrap();
                    let view = c.read_view(&[t]).unwrap();
                    assert!(view.count(t, &Query::new()).unwrap() >= n);
                    reads += 1;
                }
            }
            reads
        }));
    }

    for h in handles {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        assert!(r.join().unwrap() > 0, "reader made no progress");
    }

    let c = db.connect("app").unwrap();
    // No lost updates: every committed insert is present.
    assert_eq!(c.count("alpha", &Query::new()).unwrap(), WRITES as usize);
    assert_eq!(c.count("beta", &Query::new()).unwrap(), WRITES as usize);
    assert_eq!(c.count("ledger_a", &Query::new()).unwrap(), TXNS as usize);
    assert_eq!(c.count("ledger_b", &Query::new()).unwrap(), TXNS as usize);
    // Linearizable versions: creation (1) + one bump per committed write.
    assert_eq!(db.table_version("alpha"), 1 + WRITES as u64);
    assert_eq!(db.table_version("beta"), 1 + WRITES as u64);
    assert_eq!(db.table_version("ledger_a"), 1 + TXNS as u64);
    assert_eq!(db.table_version("ledger_b"), 1 + TXNS as u64);
}

/// Property: `read_view` never observes torn multi-table state. A
/// transactor keeps `ledger_a` and `ledger_b` in lockstep (always inserts
/// into both); concurrent views must always see equal counts and equal
/// version stamps — a half-applied transaction would break both.
#[test]
fn read_view_never_observes_torn_transactions() {
    const TXNS: i64 = 400;
    let db = setup();
    let writer = {
        let db = db.clone();
        std::thread::spawn(move || {
            let c = db.connect("app").unwrap();
            for i in 0..TXNS {
                c.transaction(&["ledger_a", "ledger_b"], |tx| {
                    tx.insert("ledger_a", &[("v", Value::Int(i))])?;
                    tx.insert("ledger_b", &[("v", Value::Int(i))])?;
                    Ok(())
                })
                .unwrap();
            }
        })
    };

    let mut checkers = Vec::new();
    for _ in 0..3 {
        let db = db.clone();
        checkers.push(std::thread::spawn(move || {
            let c = db.connect("app").unwrap();
            let mut last_stamp = vec![0u64, 0u64];
            let mut observations = 0u64;
            while !writer_done(&c, TXNS) {
                let view = c.read_view(&["ledger_a", "ledger_b"]).unwrap();
                let a = view.count("ledger_a", &Query::new()).unwrap();
                let b = view.count("ledger_b", &Query::new()).unwrap();
                assert_eq!(a, b, "torn view: ledger_a={a} ledger_b={b}");
                let stamp = view.versions();
                assert_eq!(
                    stamp[0], stamp[1],
                    "torn stamp: {stamp:?} (tables move only in lockstep)"
                );
                // Stamps from successive views are monotone (no time travel).
                assert!(stamp[0] >= last_stamp[0] && stamp[1] >= last_stamp[1]);
                last_stamp = stamp;
                observations += 1;
            }
            observations
        }));
    }

    writer.join().unwrap();
    for ch in checkers {
        assert!(ch.join().unwrap() > 0);
    }
}

fn writer_done(c: &Connection, txns: i64) -> bool {
    c.count("ledger_a", &Query::new()).unwrap() >= txns as usize
}

/// Regression (snapshot/compact held the engine lock across file I/O):
/// a concurrent read completes while a snapshot is in flight, and —
/// stronger — compaction completes while a reader *holds a read view
/// open*, which deadlocked under the old exclusive-lock compaction.
#[test]
fn snapshot_and_compact_do_not_block_readers() {
    let dir = std::env::temp_dir().join(format!("simdb_snap_conc_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let db = Db::open(dir.join("db.snap"), dir.join("db.wal")).unwrap();
    db.define_role(Role::superuser("admin"));
    db.define_role(Role::new("app").grant("t", PermSet::ALL));
    let admin = db.connect("admin").unwrap();
    admin
        .create_table(TableSchema::new(
            "t",
            vec![Column::new("v", ValueType::Int)],
        ))
        .unwrap();
    for i in 0..200 {
        admin.insert("t", &[("v", Value::Int(i))]).unwrap();
    }

    // Reads complete while snapshots are continuously in flight.
    let snapper = {
        let db = db.clone();
        std::thread::spawn(move || {
            for _ in 0..50 {
                db.snapshot().unwrap();
            }
        })
    };
    let c = db.connect("app").unwrap();
    for _ in 0..500 {
        assert_eq!(c.count("t", &Query::new()).unwrap(), 200);
    }
    snapper.join().unwrap();

    // Compaction (snapshot + WAL truncate) finishes while a read view is
    // held open: it needs only shared locks. Run it on a second thread
    // with a timeout so a regression fails instead of hanging the suite.
    let view = c.read_view(&["t"]).unwrap();
    let (tx, rx) = mpsc::channel();
    let compactor = {
        let db = db.clone();
        std::thread::spawn(move || {
            let res = db.compact();
            let _ = tx.send(res);
        })
    };
    let res = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("compact() blocked behind an open read view");
    res.unwrap();
    // The view still reads consistently after the compaction.
    assert_eq!(view.count("t", &Query::new()).unwrap(), 200);
    drop(view);
    compactor.join().unwrap();

    // And the compacted state recovers.
    drop((c, admin, db));
    let db = Db::open(dir.join("db.snap"), dir.join("db.wal")).unwrap();
    db.define_role(Role::superuser("admin"));
    let c = db.connect("admin").unwrap();
    assert_eq!(c.count("t", &Query::new()).unwrap(), 200);
}

/// Transactions on disjoint tables commit in parallel without deadlock
/// even when their declared sets overlap pairwise in opposite orders —
/// canonical-order acquisition makes the classic AB/BA interleaving safe.
#[test]
fn opposite_order_transactions_cannot_deadlock() {
    const ROUNDS: i64 = 200;
    let db = setup();
    let ab = {
        let db = db.clone();
        std::thread::spawn(move || {
            let c = db.connect("app").unwrap();
            for i in 0..ROUNDS {
                c.transaction(&["alpha", "beta"], |tx| {
                    tx.insert("alpha", &[("v", Value::Int(i))])?;
                    tx.insert("beta", &[("v", Value::Int(i))])?;
                    Ok(())
                })
                .unwrap();
            }
        })
    };
    let ba = {
        let db = db.clone();
        std::thread::spawn(move || {
            let c = db.connect("app").unwrap();
            for i in 0..ROUNDS {
                // Declared in the opposite order — the engine sorts the
                // lock set, so this cannot deadlock against `ab`.
                c.transaction(&["beta", "alpha"], |tx| {
                    tx.insert("beta", &[("v", Value::Int(-i))])?;
                    tx.insert("alpha", &[("v", Value::Int(-i))])?;
                    Ok(())
                })
                .unwrap();
            }
        })
    };
    ab.join().unwrap();
    ba.join().unwrap();
    let c = db.connect("app").unwrap();
    assert_eq!(
        c.count("alpha", &Query::new()).unwrap(),
        2 * ROUNDS as usize
    );
    assert_eq!(c.count("beta", &Query::new()).unwrap(), 2 * ROUNDS as usize);
}
