//! Serving-layer integration: concurrent keep-alive load over the
//! event-driven TCP server, the event-loop suite (idle-connection scale,
//! pipelining across readiness wakeups, slow-loris eviction, readable
//! 413s, graceful drain, byte-split arrival fuzz), and the
//! cache-transparency property — a portal serving from the versioned
//! response cache is byte-identical to one rendering every request
//! fresh, under arbitrary write/read interleavings.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use amp::core::{roles, setup};
use amp::obs;
use amp::portal::server::{fetch, fetch_pipelined, read_framed_response};
use amp::portal::{hash_password, Portal, PortalConfig, Request, Server, ServerConfig};
use amp::prelude::*;
use amp::simdb::Db;
use proptest::prelude::*;
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn fresh_db() -> Db {
    let db = Db::in_memory();
    setup::initialize(&db).unwrap();
    db
}

fn star(ident: &str) -> Star {
    Star {
        id: None,
        identifier: ident.to_string(),
        name: None,
        hd_number: None,
        kic_number: None,
        ra: 1.0,
        dec: 2.0,
        vmag: 5.0,
        in_kepler_field: false,
        source: "local".into(),
        has_results: false,
    }
}

/// Log a pre-approved user in through the portal and return the session
/// cookie value.
fn login(portal: &Portal, db: &Db, username: &str, password: &str) -> String {
    let admin = db.connect(roles::ROLE_ADMIN).unwrap();
    let mut u = AmpUser::new(
        username,
        &format!("{username}@x.edu"),
        &hash_password(password, "s"),
        0,
    );
    u.approved = true;
    Manager::<AmpUser>::new(admin).create(&mut u).unwrap();
    let resp = portal.handle(&Request::post(
        "/accounts/login",
        &[("username", username), ("password", password)],
    ));
    assert_eq!(resp.status, 302, "{}", resp.body_str());
    resp.headers
        .iter()
        .find(|(k, _)| k == "Set-Cookie")
        .map(|(_, v)| {
            v.split(';')
                .next()
                .unwrap()
                .trim_start_matches("amp_session=")
                .to_string()
        })
        .expect("session cookie")
}

/// N client threads, each pushing M pipelined keep-alive requests over a
/// single connection. Every response must be a well-formed HTTP/1.1 200,
/// and every response must match the requester's session — the anonymous
/// threads never see the logged-in user's page (i.e. the cache never
/// leaks a session-rendered response) and vice versa.
#[test]
fn concurrent_keep_alive_load_is_well_formed_and_session_consistent() {
    let db = fresh_db();
    let admin = db.connect(roles::ROLE_ADMIN).unwrap();
    let stars = Manager::<Star>::new(admin);
    for i in 0..12 {
        stars.create(&mut star(&format!("HD {i}"))).unwrap();
    }
    let portal = Arc::new(Portal::new(&db, PortalConfig::default()).unwrap());
    let cookie = login(&portal, &db, "alice", "pulsations");

    let server = Server::spawn_with(
        portal.clone(),
        0,
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    const THREADS: usize = 8;
    const REQUESTS: usize = 25;
    let paths = ["/", "/stars", "/stars?page=2"];
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let cookie = cookie.clone();
            std::thread::spawn(move || {
                // the last thread is alice; the rest are anonymous
                let logged_in = t == THREADS - 1;
                let requests: Vec<String> = (0..REQUESTS)
                    .map(|i| {
                        let path = paths[(t + i) % paths.len()];
                        if logged_in {
                            format!(
                                "GET {path} HTTP/1.1\r\nHost: t\r\nCookie: amp_session={cookie}\r\n\r\n"
                            )
                        } else {
                            format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n")
                        }
                    })
                    .collect();
                let refs: Vec<&str> = requests.iter().map(|s| s.as_str()).collect();
                let responses = fetch_pipelined(addr, &refs).expect("pipelined fetch");
                assert_eq!(responses.len(), REQUESTS);
                for r in &responses {
                    assert!(r.starts_with("HTTP/1.1 200"), "{}", &r[..60.min(r.len())]);
                    if logged_in {
                        assert!(r.contains("alice"), "logged-in response lost its session");
                        assert!(!r.contains(">log in<"));
                    } else {
                        assert!(r.contains(">log in<"), "anonymous response has a session");
                        assert!(!r.contains("alice"));
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // The anonymous traffic repeated 3 paths 7×25 times: the versioned
    // cache must have served the overwhelming majority of them.
    assert!(
        portal.cache().hits() > 100,
        "only {} cache hits",
        portal.cache().hits()
    );
    server.stop();
}

/// `Connection: close` clients (the seed behaviour) still work, and the
/// single-request `fetch` helper frames by Content-Length.
#[test]
fn close_and_keep_alive_clients_interoperate() {
    let db = fresh_db();
    let portal = Arc::new(Portal::new(&db, PortalConfig::default()).unwrap());
    let server = Server::spawn(portal, 0).unwrap();
    let addr = server.addr();

    let closed = fetch(
        addr,
        "GET /stars HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    )
    .unwrap();
    assert!(closed.starts_with("HTTP/1.1 200"));
    assert!(closed.to_ascii_lowercase().contains("connection: close"));

    let kept = fetch(addr, "GET /stars HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    assert!(kept.starts_with("HTTP/1.1 200"));
    assert!(kept.to_ascii_lowercase().contains("connection: keep-alive"));

    // HTTP/1.0 defaults to close
    let old = fetch(addr, "GET /stars HTTP/1.0\r\nHost: t\r\n\r\n").unwrap();
    assert!(old.to_ascii_lowercase().contains("connection: close"));
    server.stop();
}

// ---------------------------------------------------------------------------
// Event-loop suite: concurrency beyond the worker count, deadlines, drain.
// ---------------------------------------------------------------------------

fn closed_counter(reason: &str) -> obs::Counter {
    obs::counter(&obs::labeled(
        "portal_connections_closed_total",
        &[("reason", reason)],
    ))
}

/// The C10K shape in miniature: a crowd of mostly-idle keep-alive
/// connections parks on the event loop while a hot client hammers the
/// serving path. The old worker-pool server would have wedged — each
/// idle connection pinned a blocking worker thread — so with any crowd
/// larger than `workers` the hot path would starve. Here the crowd
/// costs a slab slot each, the hot path stays fast, and every parked
/// connection is still alive (and servable) afterwards.
#[test]
fn idle_keep_alive_crowd_does_not_starve_the_hot_path() {
    let db = fresh_db();
    let admin = db.connect(roles::ROLE_ADMIN).unwrap();
    let stars = Manager::<Star>::new(admin);
    for i in 0..6 {
        stars.create(&mut star(&format!("HD {i}"))).unwrap();
    }
    let portal = Arc::new(Portal::new(&db, PortalConfig::default()).unwrap());
    let server = Server::spawn_with(
        portal,
        0,
        ServerConfig {
            workers: 2,
            // The crowd must out-live the whole test without idling out.
            idle_timeout: Duration::from_secs(120),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    // Park the crowd. (Scaled to share the process fd budget with the
    // rest of the suite; the full 10k run lives in report_http_load.)
    const IDLE: usize = 2000;
    let idle: Vec<TcpStream> = (0..IDLE)
        .map(|_| TcpStream::connect(addr).expect("idle connect"))
        .collect();

    // Hot path: sequential keep-alive requests on one connection.
    let mut hot = TcpStream::connect(addr).unwrap();
    hot.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut buf = Vec::new();
    let mut latencies = Vec::with_capacity(300);
    for _ in 0..300 {
        let t = Instant::now();
        hot.write_all(b"GET /stars HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let resp = read_framed_response(&mut hot, &mut buf).unwrap();
        latencies.push(t.elapsed());
        assert!(resp.starts_with("HTTP/1.1 200"), "{}", &resp[..40]);
    }
    latencies.sort();
    let p99 = latencies[latencies.len() * 99 / 100];
    // Generous bound (debug build, shared CI box): the point is that the
    // crowd doesn't turn microseconds into seconds.
    assert!(
        p99 < Duration::from_millis(250),
        "hot-path p99 {p99:?} with {IDLE} idle connections parked"
    );

    // Every sampled parked connection is still live and servable.
    for mut conn in idle.into_iter().step_by(97) {
        conn.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        conn.write_all(b"GET / HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let mut b = Vec::new();
        let resp = read_framed_response(&mut conn, &mut b).expect("parked conn still serves");
        assert!(resp.starts_with("HTTP/1.1 200"));
    }
    server.stop();
}

/// Pipelining across readiness wakeups: multiple requests in one
/// segment are each answered (the parser buffer is re-polled after a
/// write completes, without waiting for new socket readiness), and a
/// request fragmented across many tiny writes still parses.
#[test]
fn pipelined_and_fragmented_requests_parse_across_wakeups() {
    let db = fresh_db();
    let portal = Arc::new(Portal::new(&db, PortalConfig::default()).unwrap());
    let server = Server::spawn(portal, 0).unwrap();
    let addr = server.addr();

    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // Three pipelined requests in a single write.
    s.write_all(
        b"GET / HTTP/1.1\r\nHost: t\r\n\r\n\
          GET /stars HTTP/1.1\r\nHost: t\r\n\r\n\
          GET /stars?page=2 HTTP/1.1\r\nHost: t\r\n\r\n",
    )
    .unwrap();
    let mut buf = Vec::new();
    for i in 0..3 {
        let resp = read_framed_response(&mut s, &mut buf).unwrap();
        assert!(resp.starts_with("HTTP/1.1 200"), "pipelined response {i}");
    }

    // One request dribbled in 7-byte fragments with pauses: each
    // fragment is a separate readiness wakeup.
    let raw = b"GET /stars HTTP/1.1\r\nHost: t\r\n\r\n";
    for chunk in raw.chunks(7) {
        s.write_all(chunk).unwrap();
        std::thread::sleep(Duration::from_millis(5));
    }
    let resp = read_framed_response(&mut s, &mut buf).unwrap();
    assert!(resp.starts_with("HTTP/1.1 200"));
    server.stop();
}

/// The slow-loris fix: a client trickling bytes forever used to pin a
/// blocking worker for the connection's lifetime, because the only
/// timeout was per-read (each byte reset it). The total per-request
/// read deadline evicts the trickler on schedule no matter how
/// diligently it feeds, and the close is attributed to `read_deadline`,
/// not `idle_timeout`.
#[test]
fn slow_loris_trickler_is_evicted_at_the_read_deadline() {
    let deadline_closes = closed_counter("read_deadline");
    let idle_closes = closed_counter("idle_timeout");
    let deadline_before = deadline_closes.get();
    let idle_before = idle_closes.get();

    let db = fresh_db();
    let portal = Arc::new(Portal::new(&db, PortalConfig::default()).unwrap());
    let server = Server::spawn_with(
        portal,
        0,
        ServerConfig {
            workers: 1,
            // Idle timeout is long; only the total-request budget may fire.
            idle_timeout: Duration::from_secs(30),
            read_deadline: Duration::from_millis(500),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_millis(25))).unwrap();
    let start = Instant::now();
    s.write_all(b"GET / HTT").unwrap();
    // Trickle: every write lands well inside any per-read/idle window.
    let mut evicted_at = None;
    let mut b = [0u8; 256];
    while start.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(50));
        if s.write_all(b"P").is_err() {
            evicted_at = Some(start.elapsed());
            break;
        }
        match s.read(&mut b) {
            Ok(0) => {
                evicted_at = Some(start.elapsed());
                break;
            }
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => {
                evicted_at = Some(start.elapsed());
                break;
            }
        }
    }
    let evicted_at = evicted_at.expect("trickling client was never evicted");
    assert!(
        evicted_at >= Duration::from_millis(400),
        "evicted before the read deadline: {evicted_at:?}"
    );
    assert!(
        evicted_at < Duration::from_secs(5),
        "eviction took far too long: {evicted_at:?}"
    );
    assert!(
        deadline_closes.get() > deadline_before,
        "close not attributed to read_deadline"
    );
    assert_eq!(
        idle_closes.get(),
        idle_before,
        "read-deadline close miscounted as idle_timeout"
    );
    server.stop();
}

/// Over-size rejection is a *readable* 413: the server answers
/// `413 Payload Too Large` (not a generic 400), half-closes its write
/// side, and drains the client, so the error arrives intact instead of
/// being destroyed by an RST. Both triggers are covered: a declared
/// Content-Length past the budget (rejected from the headers alone) and
/// actually-buffered bytes past the budget.
#[test]
fn oversized_requests_get_a_readable_413_not_a_reset() {
    let too_large = closed_counter("too_large");
    let before = too_large.get();

    let db = fresh_db();
    let portal = Arc::new(Portal::new(&db, PortalConfig::default()).unwrap());
    let server = Server::spawn_with(
        portal,
        0,
        ServerConfig {
            workers: 1,
            max_request_bytes: 2048,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    // Write the payload, read the full error response to EOF, and drop
    // the connection (the server finishes its drain on our EOF).
    let send_and_read = |payload: &[u8]| -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(payload).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut resp = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match s.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => resp.extend_from_slice(&chunk[..n]),
                Err(e) => panic!("expected a readable 413 then EOF, got {e}"),
            }
        }
        String::from_utf8_lossy(&resp).into_owned()
    };

    // Declared oversize: rejected as soon as the headers arrive, before
    // any body is transferred.
    let resp = send_and_read(b"POST /stars HTTP/1.1\r\nHost: t\r\nContent-Length: 500000\r\n\r\n");
    assert!(
        resp.starts_with("HTTP/1.1 413 Payload Too Large"),
        "{}",
        &resp[..60.min(resp.len())]
    );

    // Buffered oversize: an unterminated header section growing past the
    // budget.
    let mut huge = b"GET / HTTP/1.1\r\nX-Filler: ".to_vec();
    huge.extend_from_slice(&vec![b'a'; 4096]);
    let resp = send_and_read(&huge);
    assert!(
        resp.starts_with("HTTP/1.1 413"),
        "{}",
        &resp[..60.min(resp.len())]
    );

    // The close is accounted when the server finishes draining the
    // client (its EOF); give the loop a moment.
    let wait_until = Instant::now() + Duration::from_secs(5);
    while too_large.get() < before + 2 && Instant::now() < wait_until {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        too_large.get() >= before + 2,
        "oversize closes not attributed to too_large"
    );
    server.stop();
}

/// Graceful shutdown: `Server::stop` with requests mid-handler must
/// deliver every in-flight response completely (correct Content-Length
/// framing, then EOF) rather than snapping the sockets.
#[test]
fn graceful_shutdown_drains_in_flight_responses() {
    let db = fresh_db();
    let admin = db.connect(roles::ROLE_ADMIN).unwrap();
    Manager::<Star>::new(admin)
        .create(&mut star("HD 77"))
        .unwrap();
    let portal = Arc::new(Portal::new(&db, PortalConfig::default()).unwrap());
    let server = Server::spawn_with(
        portal,
        0,
        ServerConfig {
            workers: 4,
            // Hold each request in the handler long enough that stop()
            // provably lands while they are in flight.
            handler_delay: Duration::from_millis(300),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    let mut conns: Vec<TcpStream> = (0..3).map(|_| TcpStream::connect(addr).unwrap()).collect();
    for c in &mut conns {
        c.write_all(b"GET /stars HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
    }
    // Give the loop time to dispatch all three to workers, then pull the
    // plug while the handlers are still sleeping.
    std::thread::sleep(Duration::from_millis(100));
    let stopper = std::thread::spawn(move || server.stop());

    for mut c in conns {
        c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut resp = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match c.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => resp.extend_from_slice(&chunk[..n]),
                Err(e) => panic!("in-flight response was not drained: {e}"),
            }
        }
        let text = String::from_utf8_lossy(&resp);
        assert!(
            text.starts_with("HTTP/1.1 200"),
            "{}",
            &text[..40.min(text.len())]
        );
        // The framing must be complete: exactly header block + declared body.
        let header_end = resp
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .expect("complete headers");
        let cl: usize = text
            .lines()
            .find_map(|l| {
                let (k, v) = l.split_once(':')?;
                k.trim()
                    .eq_ignore_ascii_case("content-length")
                    .then(|| v.trim().parse().unwrap())
            })
            .expect("Content-Length header");
        assert_eq!(
            resp.len(),
            header_end + 4 + cl,
            "response truncated or over-read at shutdown"
        );
    }
    stopper.join().unwrap();
}

/// Network-level byte-split fuzz: a seeded stream of request batches is
/// written in arbitrary fragments with arbitrary pauses (so the head,
/// the body, even the `\r\n\r\n` terminator land across different
/// readiness wakeups), and every request still gets exactly one
/// complete, correctly-framed response in order.
#[test]
fn arbitrarily_split_request_streams_serve_complete_responses() {
    let db = fresh_db();
    let admin = db.connect(roles::ROLE_ADMIN).unwrap();
    Manager::<Star>::new(admin)
        .create(&mut star("HD 5"))
        .unwrap();
    let portal = Arc::new(Portal::new(&db, PortalConfig::default()).unwrap());
    let server = Server::spawn_with(
        portal,
        0,
        ServerConfig {
            workers: 2,
            idle_timeout: Duration::from_secs(60),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    let mut rng = ChaCha8Rng::seed_from_u64(0xA3);
    for round in 0..30 {
        let n_requests = rng.random_range(1..5usize);
        let mut wire = Vec::new();
        let mut expected = Vec::new();
        for _ in 0..n_requests {
            match rng.random_range(0..3u8) {
                0 => {
                    wire.extend_from_slice(b"GET / HTTP/1.1\r\nHost: t\r\n\r\n");
                    expected.push(200u16);
                }
                1 => {
                    wire.extend_from_slice(b"GET /stars HTTP/1.1\r\nHost: t\r\n\r\n");
                    expected.push(200);
                }
                _ => {
                    let body = vec![b'x'; rng.random_range(0..40usize)];
                    wire.extend_from_slice(
                        format!(
                            "POST /nope HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
                            body.len()
                        )
                        .as_bytes(),
                    );
                    wire.extend_from_slice(&body);
                    expected.push(404);
                }
            }
        }

        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut sent = 0;
        while sent < wire.len() {
            let n = rng.random_range(1..=(wire.len() - sent).min(23));
            s.write_all(&wire[sent..sent + n]).unwrap();
            sent += n;
            if rng.random_bool(0.3) {
                std::thread::sleep(Duration::from_millis(rng.random_range(0..3u64)));
            }
        }
        let mut buf = Vec::new();
        for (i, want) in expected.iter().enumerate() {
            let resp = read_framed_response(&mut s, &mut buf)
                .unwrap_or_else(|e| panic!("round {round} response {i}: {e}"));
            let status: u16 = resp
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            assert_eq!(status, *want, "round {round} response {i}: {resp}");
        }
    }
    server.stop();
}

/// Regression: `read_framed_response` used to treat an unparseable
/// `Content-Length` as 0, silently desyncing the client's framing (the
/// body bytes would be misread as the next pipelined response). It must
/// fail loudly with `InvalidData` instead.
#[test]
fn framed_reader_rejects_unparseable_content_length() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake_server = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().unwrap();
        conn.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: banana\r\n\r\nhello")
            .unwrap();
    });
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut buf = Vec::new();
    let err = read_framed_response(&mut stream, &mut buf)
        .expect_err("a garbage Content-Length must not frame as zero");
    assert_eq!(err.kind(), ErrorKind::InvalidData, "{err}");
    assert!(err.to_string().contains("banana"), "{err}");
    fake_server.join().unwrap();
}

/// A random step against the shared database / the two portals.
#[derive(Debug, Clone)]
enum Step {
    InsertStar(u16),
    RenameStar { pick: u8, name: u16 },
    ToggleResults { pick: u8 },
    Read { route: u8 },
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u16..400).prop_map(Step::InsertStar),
        (any::<u8>(), 0u16..400).prop_map(|(pick, name)| Step::RenameStar { pick, name }),
        any::<u8>().prop_map(|pick| Step::ToggleResults { pick }),
        // reads dominate, as they would in production traffic
        (any::<u8>(), any::<u8>()).prop_map(|(route, _)| Step::Read { route }),
        (any::<u8>(), any::<u8>()).prop_map(|(route, _)| Step::Read { route }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cache transparency: a cache-enabled portal and a cache-disabled
    /// portal over the SAME database return byte-identical responses
    /// (status, headers, body) at every read, no matter how writes and
    /// reads interleave.
    #[test]
    fn cached_responses_are_byte_identical_to_fresh_renders(
        steps in proptest::collection::vec(arb_step(), 1..60)
    ) {
        let db = fresh_db();
        let admin = db.connect(roles::ROLE_ADMIN).unwrap();
        let stars = Manager::<Star>::new(admin);
        stars.create(&mut star("HD 0")).unwrap();

        let cached = Portal::new(&db, PortalConfig::default()).unwrap();
        let fresh = Portal::new(
            &db,
            PortalConfig { cache_enabled: false, ..PortalConfig::default() },
        )
        .unwrap();
        prop_assert!(cached.config.cache_enabled);

        let mut known: Vec<String> = vec!["HD 0".into()];
        for step in &steps {
            match step {
                Step::InsertStar(n) => {
                    let ident = format!("HD {n}");
                    if !known.contains(&ident) {
                        stars.create(&mut star(&ident)).unwrap();
                        known.push(ident);
                    }
                }
                Step::RenameStar { pick, name } => {
                    let ident = &known[*pick as usize % known.len()];
                    if let Some(mut s) =
                        stars.first(&Query::new().eq("identifier", ident.as_str())).unwrap()
                    {
                        s.name = Some(format!("Name {name}"));
                        stars.save(&s).unwrap();
                    }
                }
                Step::ToggleResults { pick } => {
                    let ident = &known[*pick as usize % known.len()];
                    if let Some(mut s) =
                        stars.first(&Query::new().eq("identifier", ident.as_str())).unwrap()
                    {
                        s.has_results = !s.has_results;
                        stars.save(&s).unwrap();
                    }
                }
                Step::Read { route } => {
                    let detail = format!(
                        "/star/{}",
                        known[*route as usize % known.len()].replace(' ', "%20")
                    );
                    let path = match route % 4 {
                        0 => "/",
                        1 => "/stars",
                        2 => "/stars?page=2",
                        _ => detail.as_str(),
                    };
                    let req = Request::get(path);
                    let a = cached.handle(&req);
                    let b = fresh.handle(&req);
                    prop_assert_eq!(a.status, b.status, "status diverged on {}", path);
                    prop_assert_eq!(&a.headers, &b.headers, "headers diverged on {}", path);
                    prop_assert_eq!(&a.body, &b.body, "body diverged on {}", path);
                }
            }
        }
        // fresh portal never populated a cache
        prop_assert!(fresh.cache().is_empty());
    }
}
