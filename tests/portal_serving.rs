//! Serving-layer integration: concurrent keep-alive load over the
//! worker-pool TCP server, and the cache-transparency property — a portal
//! serving from the versioned response cache is byte-identical to one
//! rendering every request fresh, under arbitrary write/read
//! interleavings.

use std::sync::Arc;

use amp::core::{roles, setup};
use amp::portal::server::{fetch, fetch_pipelined};
use amp::portal::{hash_password, Portal, PortalConfig, Request, Server, ServerConfig};
use amp::prelude::*;
use amp::simdb::Db;
use proptest::prelude::*;

fn fresh_db() -> Db {
    let db = Db::in_memory();
    setup::initialize(&db).unwrap();
    db
}

fn star(ident: &str) -> Star {
    Star {
        id: None,
        identifier: ident.to_string(),
        name: None,
        hd_number: None,
        kic_number: None,
        ra: 1.0,
        dec: 2.0,
        vmag: 5.0,
        in_kepler_field: false,
        source: "local".into(),
        has_results: false,
    }
}

/// Log a pre-approved user in through the portal and return the session
/// cookie value.
fn login(portal: &Portal, db: &Db, username: &str, password: &str) -> String {
    let admin = db.connect(roles::ROLE_ADMIN).unwrap();
    let mut u = AmpUser::new(
        username,
        &format!("{username}@x.edu"),
        &hash_password(password, "s"),
        0,
    );
    u.approved = true;
    Manager::<AmpUser>::new(admin).create(&mut u).unwrap();
    let resp = portal.handle(&Request::post(
        "/accounts/login",
        &[("username", username), ("password", password)],
    ));
    assert_eq!(resp.status, 302, "{}", resp.body_str());
    resp.headers
        .iter()
        .find(|(k, _)| k == "Set-Cookie")
        .map(|(_, v)| {
            v.split(';')
                .next()
                .unwrap()
                .trim_start_matches("amp_session=")
                .to_string()
        })
        .expect("session cookie")
}

/// N client threads, each pushing M pipelined keep-alive requests over a
/// single connection. Every response must be a well-formed HTTP/1.1 200,
/// and every response must match the requester's session — the anonymous
/// threads never see the logged-in user's page (i.e. the cache never
/// leaks a session-rendered response) and vice versa.
#[test]
fn concurrent_keep_alive_load_is_well_formed_and_session_consistent() {
    let db = fresh_db();
    let admin = db.connect(roles::ROLE_ADMIN).unwrap();
    let stars = Manager::<Star>::new(admin);
    for i in 0..12 {
        stars.create(&mut star(&format!("HD {i}"))).unwrap();
    }
    let portal = Arc::new(Portal::new(&db, PortalConfig::default()).unwrap());
    let cookie = login(&portal, &db, "alice", "pulsations");

    let server = Server::spawn_with(
        portal.clone(),
        0,
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    const THREADS: usize = 8;
    const REQUESTS: usize = 25;
    let paths = ["/", "/stars", "/stars?page=2"];
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let cookie = cookie.clone();
            std::thread::spawn(move || {
                // the last thread is alice; the rest are anonymous
                let logged_in = t == THREADS - 1;
                let requests: Vec<String> = (0..REQUESTS)
                    .map(|i| {
                        let path = paths[(t + i) % paths.len()];
                        if logged_in {
                            format!(
                                "GET {path} HTTP/1.1\r\nHost: t\r\nCookie: amp_session={cookie}\r\n\r\n"
                            )
                        } else {
                            format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n")
                        }
                    })
                    .collect();
                let refs: Vec<&str> = requests.iter().map(|s| s.as_str()).collect();
                let responses = fetch_pipelined(addr, &refs).expect("pipelined fetch");
                assert_eq!(responses.len(), REQUESTS);
                for r in &responses {
                    assert!(r.starts_with("HTTP/1.1 200"), "{}", &r[..60.min(r.len())]);
                    if logged_in {
                        assert!(r.contains("alice"), "logged-in response lost its session");
                        assert!(!r.contains(">log in<"));
                    } else {
                        assert!(r.contains(">log in<"), "anonymous response has a session");
                        assert!(!r.contains("alice"));
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // The anonymous traffic repeated 3 paths 7×25 times: the versioned
    // cache must have served the overwhelming majority of them.
    assert!(
        portal.cache().hits() > 100,
        "only {} cache hits",
        portal.cache().hits()
    );
    server.stop();
}

/// `Connection: close` clients (the seed behaviour) still work, and the
/// single-request `fetch` helper frames by Content-Length.
#[test]
fn close_and_keep_alive_clients_interoperate() {
    let db = fresh_db();
    let portal = Arc::new(Portal::new(&db, PortalConfig::default()).unwrap());
    let server = Server::spawn(portal, 0).unwrap();
    let addr = server.addr();

    let closed = fetch(
        addr,
        "GET /stars HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    )
    .unwrap();
    assert!(closed.starts_with("HTTP/1.1 200"));
    assert!(closed.to_ascii_lowercase().contains("connection: close"));

    let kept = fetch(addr, "GET /stars HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    assert!(kept.starts_with("HTTP/1.1 200"));
    assert!(kept.to_ascii_lowercase().contains("connection: keep-alive"));

    // HTTP/1.0 defaults to close
    let old = fetch(addr, "GET /stars HTTP/1.0\r\nHost: t\r\n\r\n").unwrap();
    assert!(old.to_ascii_lowercase().contains("connection: close"));
    server.stop();
}

/// A random step against the shared database / the two portals.
#[derive(Debug, Clone)]
enum Step {
    InsertStar(u16),
    RenameStar { pick: u8, name: u16 },
    ToggleResults { pick: u8 },
    Read { route: u8 },
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u16..400).prop_map(Step::InsertStar),
        (any::<u8>(), 0u16..400).prop_map(|(pick, name)| Step::RenameStar { pick, name }),
        any::<u8>().prop_map(|pick| Step::ToggleResults { pick }),
        // reads dominate, as they would in production traffic
        (any::<u8>(), any::<u8>()).prop_map(|(route, _)| Step::Read { route }),
        (any::<u8>(), any::<u8>()).prop_map(|(route, _)| Step::Read { route }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cache transparency: a cache-enabled portal and a cache-disabled
    /// portal over the SAME database return byte-identical responses
    /// (status, headers, body) at every read, no matter how writes and
    /// reads interleave.
    #[test]
    fn cached_responses_are_byte_identical_to_fresh_renders(
        steps in proptest::collection::vec(arb_step(), 1..60)
    ) {
        let db = fresh_db();
        let admin = db.connect(roles::ROLE_ADMIN).unwrap();
        let stars = Manager::<Star>::new(admin);
        stars.create(&mut star("HD 0")).unwrap();

        let cached = Portal::new(&db, PortalConfig::default()).unwrap();
        let fresh = Portal::new(
            &db,
            PortalConfig { cache_enabled: false, ..PortalConfig::default() },
        )
        .unwrap();
        prop_assert!(cached.config.cache_enabled);

        let mut known: Vec<String> = vec!["HD 0".into()];
        for step in &steps {
            match step {
                Step::InsertStar(n) => {
                    let ident = format!("HD {n}");
                    if !known.contains(&ident) {
                        stars.create(&mut star(&ident)).unwrap();
                        known.push(ident);
                    }
                }
                Step::RenameStar { pick, name } => {
                    let ident = &known[*pick as usize % known.len()];
                    if let Some(mut s) =
                        stars.first(&Query::new().eq("identifier", ident.as_str())).unwrap()
                    {
                        s.name = Some(format!("Name {name}"));
                        stars.save(&s).unwrap();
                    }
                }
                Step::ToggleResults { pick } => {
                    let ident = &known[*pick as usize % known.len()];
                    if let Some(mut s) =
                        stars.first(&Query::new().eq("identifier", ident.as_str())).unwrap()
                    {
                        s.has_results = !s.has_results;
                        stars.save(&s).unwrap();
                    }
                }
                Step::Read { route } => {
                    let detail = format!(
                        "/star/{}",
                        known[*route as usize % known.len()].replace(' ', "%20")
                    );
                    let path = match route % 4 {
                        0 => "/",
                        1 => "/stars",
                        2 => "/stars?page=2",
                        _ => detail.as_str(),
                    };
                    let req = Request::get(path);
                    let a = cached.handle(&req);
                    let b = fresh.handle(&req);
                    prop_assert_eq!(a.status, b.status, "status diverged on {}", path);
                    prop_assert_eq!(&a.headers, &b.headers, "headers diverged on {}", path);
                    prop_assert_eq!(&a.body, &b.body, "body diverged on {}", path);
                }
            }
        }
        // fresh portal never populated a cache
        prop_assert!(fresh.cache().is_empty());
    }
}
