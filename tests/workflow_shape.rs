//! F1/L1 integration: the executed optimization workflow has exactly the
//! shape of Figure 1, and simulations move through exactly the Listing-1
//! state sequence.

use amp::prelude::*;

fn truth() -> StellarParams {
    StellarParams {
        mass: 1.05,
        metallicity: 0.02,
        helium: 0.27,
        alpha: 2.0,
        age: 4.0,
    }
}

fn deploy_kraken(walltime_hours: f64, chaining: bool) -> amp::gridamp::Deployment {
    amp::gridamp::deploy(
        amp::grid::systems::kraken(),
        DaemonConfig {
            site: "kraken".into(),
            work_walltime_hours: walltime_hours,
            job_chaining: chaining,
            ..DaemonConfig::default()
        },
        None,
    )
    .unwrap()
}

fn submit_opt(dep: &amp::gridamp::Deployment, spec: OptimizationSpec) -> i64 {
    let (user, star, alloc, obs) =
        amp::gridamp::seed_fixtures(&dep.db, "kraken", &truth(), 11).unwrap();
    let web = dep.db.connect(amp::core::roles::ROLE_WEB).unwrap();
    let mut sim = Simulation::new_optimization(star, user, spec, obs, "kraken", alloc, 0);
    Manager::<Simulation>::new(web).create(&mut sim).unwrap()
}

#[test]
fn figure1_shape_holds() {
    let mut dep = deploy_kraken(6.0, false);
    let spec = OptimizationSpec {
        ga_runs: 4,
        population: 24,
        generations: 40,
        cores_per_run: 128,
        seed: 5,
    };
    let sim_id = submit_opt(&dep, spec.clone());
    dep.daemon.run_until_settled(&dep.grid, 24.0 * 30.0);

    let admin = dep.db.connect(amp::core::roles::ROLE_ADMIN).unwrap();
    let sim = Manager::<Simulation>::new(admin.clone())
        .get(sim_id)
        .unwrap();
    assert_eq!(sim.status, SimStatus::Done, "{}", sim.status_message);

    let jobs = Manager::<GridJobRecord>::new(admin)
        .filter(&Query::new().eq("simulation_id", sim_id))
        .unwrap();

    // N parallel GA runs, each a chain of >= 2 walltime-limited jobs.
    for r in 0..spec.ga_runs as i64 {
        let mut chain: Vec<&GridJobRecord> = jobs
            .iter()
            .filter(|j| j.purpose == JobPurpose::Work && j.ga_run == r)
            .collect();
        chain.sort_by_key(|j| j.continuation);
        assert!(chain.len() >= 2, "run {r}: {} jobs", chain.len());
        // chains are sequential: job c+1 starts after job c ends
        for w in chain.windows(2) {
            assert!(
                w[1].started_at.unwrap() >= w[0].ended_at.unwrap(),
                "run {r} continuation overlap"
            );
        }
        // every work job uses the configured 128 cores
        assert!(chain.iter().all(|j| j.cores == 128));
    }

    // the four lanes genuinely overlap (parallel, not serialized)
    let lane_start = |r: i64| {
        jobs.iter()
            .filter(|j| j.purpose == JobPurpose::Work && j.ga_run == r)
            .filter_map(|j| j.started_at)
            .min()
            .unwrap()
    };
    let lane_end = |r: i64| {
        jobs.iter()
            .filter(|j| j.purpose == JobPurpose::Work && j.ga_run == r)
            .filter_map(|j| j.ended_at)
            .max()
            .unwrap()
    };
    let latest_start = (0..4).map(lane_start).max().unwrap();
    let earliest_end = (0..4).map(lane_end).min().unwrap();
    assert!(latest_start < earliest_end, "GA lanes did not overlap");

    // exactly one solution evaluation, after all lanes end
    let solution: Vec<&GridJobRecord> = jobs
        .iter()
        .filter(|j| j.purpose == JobPurpose::SolutionEvaluation)
        .collect();
    assert_eq!(solution.len(), 1);
    assert!(solution[0].started_at.unwrap() >= (0..4).map(lane_end).max().unwrap());
    assert_eq!(solution[0].cores, 1);

    // fork stages: one each of prejob/postjob/cleanup
    for p in [JobPurpose::PreJob, JobPurpose::PostJob, JobPurpose::Cleanup] {
        assert_eq!(jobs.iter().filter(|j| j.purpose == p).count(), 1, "{p:?}");
    }
}

#[test]
fn listing1_state_sequence_exact() {
    let mut dep = deploy_kraken(24.0, false);
    let (user, star, alloc, _obs) =
        amp::gridamp::seed_fixtures(&dep.db, "kraken", &truth(), 3).unwrap();
    let web = dep.db.connect(amp::core::roles::ROLE_WEB).unwrap();
    let mut sim = Simulation::new_direct(star, user, StellarParams::sun(), "kraken", alloc, 0);
    let sim_id = Manager::<Simulation>::new(web).create(&mut sim).unwrap();

    // collect every transition the daemon reports
    let mut transitions = Vec::new();
    for _ in 0..200 {
        let report = dep.daemon.tick(&dep.grid);
        transitions.extend(
            report
                .transitions
                .iter()
                .filter(|(id, _, _)| *id == sim_id)
                .map(|(_, from, to)| (*from, *to)),
        );
        let admin = dep.db.connect(amp::core::roles::ROLE_ADMIN).unwrap();
        if Manager::<Simulation>::new(admin)
            .get(sim_id)
            .unwrap()
            .status
            == SimStatus::Done
        {
            break;
        }
        dep.grid.advance(SimDuration::from_secs(300));
    }
    assert_eq!(
        transitions,
        vec![
            (SimStatus::Queued, SimStatus::PreJob),
            (SimStatus::PreJob, SimStatus::Running),
            (SimStatus::Running, SimStatus::PostJob),
            (SimStatus::PostJob, SimStatus::Cleanup),
            (SimStatus::Cleanup, SimStatus::Done),
        ],
        "not the Listing-1 sequence"
    );
}

#[test]
fn chaining_submits_dependent_jobs_upfront() {
    let mut dep = deploy_kraken(6.0, true);
    let spec = OptimizationSpec {
        ga_runs: 2,
        population: 24,
        generations: 40,
        cores_per_run: 128,
        seed: 5,
    };
    let sim_id = submit_opt(&dep, spec);
    // a couple of ticks: chains should already be fully submitted
    dep.daemon.tick(&dep.grid);
    dep.grid.advance(SimDuration::from_secs(300));
    dep.daemon.tick(&dep.grid);

    let admin = dep.db.connect(amp::core::roles::ROLE_ADMIN).unwrap();
    let jobs = Manager::<GridJobRecord>::new(admin.clone())
        .filter(
            &Query::new()
                .eq("simulation_id", sim_id)
                .eq("purpose", "WORK"),
        )
        .unwrap();
    for r in 0..2 {
        let n = jobs.iter().filter(|j| j.ga_run == r).count();
        assert!(
            n >= 2,
            "run {r}: chaining should submit the whole chain up-front, saw {n}"
        );
        // later continuations are queued (pending), not running
        assert!(jobs
            .iter()
            .filter(|j| j.ga_run == r && j.continuation > 0)
            .all(|j| j.status == JobStatus::Pending));
    }

    // and the run still completes correctly
    dep.daemon.run_until_settled(&dep.grid, 24.0 * 30.0);
    let sim = Manager::<Simulation>::new(admin).get(sim_id).unwrap();
    assert_eq!(sim.status, SimStatus::Done, "{}", sim.status_message);
}

#[test]
fn two_simulations_share_the_machine() {
    let mut dep = deploy_kraken(24.0, false);
    let (user, star, alloc, obs) =
        amp::gridamp::seed_fixtures(&dep.db, "kraken", &truth(), 9).unwrap();
    let web = dep.db.connect(amp::core::roles::ROLE_WEB).unwrap();
    let sims = Manager::<Simulation>::new(web);
    let mut ids = Vec::new();
    for seed in [1u64, 2] {
        let spec = OptimizationSpec {
            ga_runs: 2,
            population: 20,
            generations: 20,
            cores_per_run: 128,
            seed,
        };
        let mut sim = Simulation::new_optimization(star, user, spec, obs, "kraken", alloc, 0);
        ids.push(sims.create(&mut sim).unwrap());
    }
    dep.daemon.run_until_settled(&dep.grid, 24.0 * 30.0);
    let admin = dep.db.connect(amp::core::roles::ROLE_ADMIN).unwrap();
    let mgr = Manager::<Simulation>::new(admin);
    for id in ids {
        let s = mgr.get(id).unwrap();
        assert_eq!(s.status, SimStatus::Done, "sim {id}: {}", s.status_message);
        assert!(s.result_json.is_some());
    }
}
