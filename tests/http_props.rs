//! Property tests for the hand-rolled HTTP layer: the parser is total
//! (never panics on arbitrary bytes), encode/decode round-trips, and
//! serialized responses contain consistent framing.
//!
//! The malformed-request pass fuzzes the framing layer specifically:
//! bad / duplicate / huge `Content-Length` values, truncated percent
//! escapes, and request heads split across arbitrary chunk boundaries.
//! The invariant is that a byte stream either yields valid requests or
//! a fatal parse error — never a desynchronized stream where body bytes
//! are reinterpreted as a pipelined request (request smuggling).

use amp::portal::http::{
    parse_urlencoded, urldecode, urldecode_query, urlencode, urlencode_path, HttpError, Request,
    RequestParser, Response,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_parser_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = Request::parse(&bytes);
    }

    /// `urlencode` produces form/query encoding (space -> `+`), so it
    /// pairs with `urldecode_query`; `urlencode_path` produces path
    /// encoding (space -> `%20`, literal `+` escaped), pairing with the
    /// plain path decoder `urldecode`.
    #[test]
    fn urlencode_roundtrip(s in "\\PC{0,100}") {
        prop_assert_eq!(urldecode_query(&urlencode(&s)), s.clone());
        prop_assert_eq!(urldecode(&urlencode_path(&s)), s);
    }

    /// Path decoding must not apply the form rule: a literal `+` in a
    /// path segment is just a plus sign.
    #[test]
    fn path_decode_preserves_literal_plus(a in "[a-zA-Z0-9]{0,10}", b in "[a-zA-Z0-9]{0,10}") {
        let s = format!("{a}+{b}");
        prop_assert_eq!(urldecode(&s), s.clone());
        prop_assert_eq!(urldecode_query(&s), format!("{a} {b}"));
    }

    #[test]
    fn urldecode_is_total(s in "[ -~]{0,120}") {
        let _ = urldecode(&s);
        let _ = urldecode_query(&s);
        let _ = parse_urlencoded(&s);
    }

    /// Truncated or malformed percent escapes never panic and never eat
    /// trailing bytes: output is always valid UTF-8 derived from input.
    #[test]
    fn truncated_percent_escapes_are_total(prefix in "[a-z]{0,8}", hex in "[0-9a-fA-F]{0,1}") {
        let s = format!("{prefix}%{hex}");
        let _ = urldecode(&s);
        let _ = urldecode_query(&s);
        let _ = parse_urlencoded(&format!("k={s}"));
    }

    #[test]
    fn form_roundtrip(pairs in proptest::collection::vec(("[a-z_]{1,12}", "\\PC{0,40}"), 0..8)) {
        // deduplicate keys (maps collapse duplicates)
        let mut seen = std::collections::BTreeMap::new();
        for (k, v) in &pairs {
            seen.insert(k.clone(), v.clone());
        }
        let form: Vec<(&str, &str)> =
            seen.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        let req = Request::post("/x", &form);
        let parsed = req.form();
        prop_assert_eq!(parsed.len(), seen.len());
        for (k, v) in &seen {
            prop_assert_eq!(parsed.get(k.as_str()), Some(v));
        }
    }

    #[test]
    fn parsed_request_roundtrips_through_raw(path in "[a-z/]{1,30}", q in "[a-z0-9=&]{0,30}") {
        let target = if q.is_empty() {
            path.clone()
        } else {
            format!("{path}?{q}")
        };
        let raw = format!("GET {target} HTTP/1.1\r\nHost: amp\r\n\r\n");
        let req = Request::parse(raw.as_bytes()).unwrap();
        prop_assert_eq!(&req.path, &path);
    }

    /// A request with an unparseable Content-Length followed by a
    /// pipelined request must produce a fatal error, and the smuggled
    /// follow-up must never surface as a parsed request.
    #[test]
    fn malformed_content_length_never_desyncs(
        cl in prop_oneof![
            Just("oops".to_string()),
            Just("-1".to_string()),
            Just("1e3".to_string()),
            Just("18446744073709551616".to_string()),
            Just("4294967296".to_string()),
            Just("+5".to_string()),
            Just("5 5".to_string()),
            "[a-z]{1,8}",
        ],
        body in "[a-z]{0,16}",
    ) {
        let raw = format!(
            "POST /submit HTTP/1.1\r\nHost: amp\r\nContent-Length: {cl}\r\n\r\n\
             {body}GET /admin HTTP/1.1\r\nHost: amp\r\n\r\n"
        );
        let mut parser = RequestParser::new();
        parser.extend(raw.as_bytes());
        loop {
            match parser.next_request() {
                Err(e) => {
                    prop_assert_eq!(e, HttpError::BadContentLength);
                    break;
                }
                Ok(Some((req, _))) => {
                    // Never the smuggled request.
                    prop_assert_ne!(&req.path, "/admin");
                }
                Ok(None) => {
                    prop_assert!(false, "malformed Content-Length was silently accepted");
                }
            }
        }
    }

    /// Duplicate Content-Length headers (the classic two-frontends
    /// smuggling vector) are always fatal, whatever the values.
    #[test]
    fn duplicate_content_length_is_fatal(a in 0u32..100, b in 0u32..100) {
        let raw = format!(
            "POST /x HTTP/1.1\r\nHost: amp\r\nContent-Length: {a}\r\nContent-Length: {b}\r\n\r\n"
        );
        let mut parser = RequestParser::new();
        parser.extend(raw.as_bytes());
        prop_assert_eq!(parser.next_request().err(), Some(HttpError::BadContentLength));
    }

    /// Feeding a valid pipelined stream in arbitrary chunk sizes yields
    /// exactly the same request sequence as one whole-buffer feed —
    /// chunk boundaries inside heads, bodies, or the `\r\n\r\n`
    /// terminator never change what is parsed.
    #[test]
    fn chunked_feed_matches_whole_buffer(
        body in "[a-z]{0,24}",
        path in "[a-z]{1,12}",
        cuts in proptest::collection::vec(1usize..200, 0..6),
    ) {
        let raw = format!(
            "POST /{path} HTTP/1.1\r\nHost: amp\r\nContent-Length: {}\r\n\r\n{body}\
             GET /{path}/second HTTP/1.1\r\nHost: amp\r\n\r\n",
            body.len()
        );
        let bytes = raw.as_bytes();

        let drain = |parser: &mut RequestParser| {
            let mut out = Vec::new();
            while let Ok(Some((req, keep))) = parser.next_request() {
                out.push((req.method, req.path, req.body, keep));
            }
            out
        };

        let mut whole = RequestParser::new();
        whole.extend(bytes);
        let expected = drain(&mut whole);
        prop_assert_eq!(expected.len(), 2);

        let mut chunked = RequestParser::new();
        let mut got = Vec::new();
        let mut at = 0;
        let mut offsets: Vec<usize> = cuts.iter().map(|c| c % bytes.len().max(1)).collect();
        offsets.sort_unstable();
        offsets.push(bytes.len());
        for end in offsets {
            if end <= at {
                continue;
            }
            chunked.extend(&bytes[at..end]);
            at = end;
            got.extend(drain(&mut chunked));
        }
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn response_framing_consistent(status in prop_oneof![Just(200u16), Just(302), Just(400), Just(403), Just(404), Just(500)],
                                   body in proptest::collection::vec(any::<u8>(), 0..200)) {
        let mut r = Response::html("");
        r.status = status;
        r.body = body.clone();
        let raw = r.to_bytes();
        let text = String::from_utf8_lossy(&raw);
        let start = format!("HTTP/1.1 {status} ");
        prop_assert!(text.starts_with(&start));
        let cl_line = format!("Content-Length: {}\r\n", body.len());
        prop_assert!(text.contains(&cl_line));
        // body is exactly the declared suffix
        prop_assert_eq!(&raw[raw.len() - body.len()..], &body[..]);
    }
}
