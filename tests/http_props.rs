//! Property tests for the hand-rolled HTTP layer: the parser is total
//! (never panics on arbitrary bytes), encode/decode round-trips, and
//! serialized responses contain consistent framing.

use amp::portal::http::{parse_urlencoded, urldecode, urlencode, Request, Response};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_parser_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = Request::parse(&bytes);
    }

    #[test]
    fn urlencode_roundtrip(s in "\\PC{0,100}") {
        prop_assert_eq!(urldecode(&urlencode(&s)), s);
    }

    #[test]
    fn urldecode_is_total(s in "[ -~]{0,120}") {
        let _ = urldecode(&s);
        let _ = parse_urlencoded(&s);
    }

    #[test]
    fn form_roundtrip(pairs in proptest::collection::vec(("[a-z_]{1,12}", "\\PC{0,40}"), 0..8)) {
        // deduplicate keys (maps collapse duplicates)
        let mut seen = std::collections::BTreeMap::new();
        for (k, v) in &pairs {
            seen.insert(k.clone(), v.clone());
        }
        let form: Vec<(&str, &str)> =
            seen.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        let req = Request::post("/x", &form);
        let parsed = req.form();
        prop_assert_eq!(parsed.len(), seen.len());
        for (k, v) in &seen {
            prop_assert_eq!(parsed.get(k.as_str()), Some(v));
        }
    }

    #[test]
    fn parsed_request_roundtrips_through_raw(path in "[a-z/]{1,30}", q in "[a-z0-9=&]{0,30}") {
        let target = if q.is_empty() {
            path.clone()
        } else {
            format!("{path}?{q}")
        };
        let raw = format!("GET {target} HTTP/1.1\r\nHost: amp\r\n\r\n");
        let req = Request::parse(raw.as_bytes()).unwrap();
        prop_assert_eq!(&req.path, &path);
    }

    #[test]
    fn response_framing_consistent(status in prop_oneof![Just(200u16), Just(302), Just(400), Just(403), Just(404), Just(500)],
                                   body in proptest::collection::vec(any::<u8>(), 0..200)) {
        let mut r = Response::html("");
        r.status = status;
        r.body = body.clone();
        let raw = r.to_bytes();
        let text = String::from_utf8_lossy(&raw);
        let start = format!("HTTP/1.1 {status} ");
        prop_assert!(text.starts_with(&start));
        let cl_line = format!("Content-Length: {}\r\n", body.len());
        prop_assert!(text.contains(&cl_line));
        // body is exactly the declared suffix
        prop_assert_eq!(&raw[raw.len() - body.len()..], &body[..]);
    }
}
