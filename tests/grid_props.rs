//! Property tests for the batch scheduler: cores are never oversubscribed
//! at any instant, every job reaches a terminal state, FCFS+backfill never
//! delays the queue head, and dependencies are strictly respected — under
//! randomized job sets.

use amp::grid::app::SleepApp;
use amp::grid::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone)]
struct JobReq {
    cores: u32,
    minutes: u16,
    dep_on_prev: bool,
}

fn arb_jobs() -> impl Strategy<Value = Vec<JobReq>> {
    proptest::collection::vec(
        (1u32..600, 5u16..240, any::<bool>()).prop_map(|(cores, minutes, dep_on_prev)| JobReq {
            cores,
            minutes,
            dep_on_prev,
        }),
        1..25,
    )
}

fn run_jobs(jobs: &[JobReq], seed: u64) -> (Grid, Vec<GramJobHandle>) {
    let mut profile = amp::grid::systems::lonestar();
    profile.cores = 1000;
    let site = profile.name.clone();
    let mut grid = Grid::new();
    if seed.is_multiple_of(2) {
        grid.add_site(profile);
    } else {
        grid.add_site_with_background(profile, seed);
    }
    grid.install_app(&site, "sleep", Arc::new(SleepApp));
    let cred = CommunityCredential::new("/CN=amp");
    grid.authorize(&site, &cred);
    let proxy = cred.issue_proxy("prop", grid.now(), SimDuration::from_hours(100_000.0));

    let mut handles: Vec<GramJobHandle> = Vec::new();
    for (i, j) in jobs.iter().enumerate() {
        let depends_on = if j.dep_on_prev && !handles.is_empty() {
            vec![handles.last().unwrap().clone()]
        } else {
            vec![]
        };
        let h = grid
            .gram_submit(
                &site,
                &proxy,
                GramJobSpec {
                    service: GramService::Batch,
                    executable: "sleep".into(),
                    args: vec![j.minutes.to_string()],
                    workdir: format!("w{i}"),
                    cores: j.cores,
                    walltime: SimDuration::from_minutes(j.minutes as f64 + 10.0),
                    depends_on,
                    name: format!("j{i}"),
                },
            )
            .unwrap();
        handles.push(h);
    }
    grid.advance(SimDuration::from_hours(24.0 * 60.0));
    (grid, handles)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn all_jobs_terminate_and_cores_never_oversubscribed(jobs in arb_jobs(), seed in 0u64..50) {
        let (grid, handles) = run_jobs(&jobs, seed);

        // every submitted job reached a terminal state
        let mut events: Vec<(i64, i64)> = Vec::new(); // (time, +cores/-cores)
        for h in &handles {
            let t = grid.job_times("lonestar", h).expect("record");
            prop_assert!(t.state.is_terminal(), "{:?}", t.state);
            if let (Some(s), Some(e)) = (t.started_at, t.ended_at) {
                events.push((s.as_secs() as i64, t.cores as i64));
                events.push((e.as_secs() as i64, -(t.cores as i64)));
            }
        }
        // include background jobs in the occupancy audit
        // (guard taken after the job_times calls above: the site mutex is
        // non-reentrant, so never hold it across another Grid call)
        let site = grid.site("lonestar").unwrap();
        for j in site.scheduler.jobs() {
            if j.background {
                if let amp::grid::JobState::Done { started_at, ended_at, .. } = j.state {
                    events.push((started_at.as_secs() as i64, j.cores as i64));
                    events.push((ended_at.as_secs() as i64, -(j.cores as i64)));
                }
            }
        }
        // sweep: at every instant, occupancy <= machine cores
        // (ends sort before starts at the same second: release-then-acquire)
        events.sort_by_key(|(t, d)| (*t, *d));
        let mut occupancy = 0i64;
        for (_, d) in events {
            occupancy += d;
            prop_assert!(occupancy <= 1000, "oversubscribed: {occupancy}");
            prop_assert!(occupancy >= 0);
        }
    }

    #[test]
    fn dependencies_strictly_ordered(jobs in arb_jobs(), seed in 0u64..20) {
        let (grid, handles) = run_jobs(&jobs, seed);
        for (i, j) in jobs.iter().enumerate() {
            if j.dep_on_prev && i > 0 {
                let cur = grid.job_times("lonestar", &handles[i]).unwrap();
                let prev = grid.job_times("lonestar", &handles[i - 1]).unwrap();
                if let (Some(cs), Some(pe)) = (cur.started_at, prev.ended_at) {
                    prop_assert!(cs >= pe, "dependent started {cs} before dep ended {pe}");
                }
            }
        }
    }

    #[test]
    fn fcfs_head_never_starved(jobs in arb_jobs()) {
        // quiet machine, no deps: FCFS order means a job never starts
        // after a job submitted later *unless* it was backfilled around a
        // blocked head without delaying it. The head property we check:
        // the first job always starts immediately (t=0).
        let independent: Vec<JobReq> = jobs
            .into_iter()
            .map(|mut j| { j.dep_on_prev = false; j })
            .collect();
        let (grid, handles) = run_jobs(&independent, 0);
        let first = grid.job_times("lonestar", &handles[0]).unwrap();
        prop_assert_eq!(first.wait().unwrap(), SimDuration::ZERO);
    }
}
