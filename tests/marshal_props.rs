//! Property tests for the strict marshaling layer (S1): generate∘parse is
//! the identity over arbitrary observation sets and parameter files, the
//! identifier sanitizer never lets metacharacters through, and random
//! garbage never parses.

use amp::core::{
    generate_observation_file, generate_params_file, parse_observation_file, parse_params_file,
};
use amp::stellar::{Constraint, ObservedMode, ObservedStar, StellarParams};
use proptest::prelude::*;

fn arb_mode() -> impl Strategy<Value = ObservedMode> {
    (0u8..=3, 1u32..60, 100.0f64..9000.0, 0.001f64..5.0).prop_map(|(l, n, frequency, sigma)| {
        ObservedMode {
            l,
            n,
            frequency,
            sigma,
        }
    })
}

fn arb_constraint() -> impl Strategy<Value = Option<Constraint>> {
    proptest::option::of(
        (1000.0f64..10000.0, 0.1f64..500.0).prop_map(|(value, sigma)| Constraint { value, sigma }),
    )
}

fn arb_observed() -> impl Strategy<Value = ObservedStar> {
    (
        "[ -~]{1,40}", // printable ASCII identifiers, worst case
        proptest::collection::vec(arb_mode(), 0..40),
        arb_constraint(),
        arb_constraint(),
    )
        .prop_map(|(identifier, modes, teff, luminosity)| ObservedStar {
            identifier,
            modes,
            teff,
            luminosity,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn observation_roundtrip_preserves_structure(obs in arb_observed()) {
        let text = generate_observation_file(&obs);
        let parsed = parse_observation_file(&text).unwrap();
        prop_assert_eq!(parsed.modes.len(), obs.modes.len());
        for (a, b) in parsed.modes.iter().zip(obs.modes.iter()) {
            prop_assert_eq!(a.l, b.l);
            prop_assert_eq!(a.n, b.n);
            prop_assert!((a.frequency - b.frequency).abs() <= b.frequency.abs() * 1e-6 + 1e-6);
            prop_assert!((a.sigma - b.sigma).abs() <= b.sigma.abs() * 1e-6 + 1e-9);
        }
        prop_assert_eq!(parsed.teff.is_some(), obs.teff.is_some());
        prop_assert_eq!(parsed.luminosity.is_some(), obs.luminosity.is_some());
    }

    #[test]
    fn generated_files_never_contain_metacharacters(obs in arb_observed()) {
        let text = generate_observation_file(&obs);
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("STAR ") {
                for c in rest.chars() {
                    prop_assert!(
                        c.is_ascii_alphanumeric() || " -+._".contains(c),
                        "leaked {c:?} in {rest:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn params_roundtrip(mass in 0.1f64..5.0, z in 0.0001f64..0.2,
                        y in 0.1f64..0.5, alpha in 0.5f64..4.0, age in 0.01f64..20.0) {
        let p = StellarParams { mass, metallicity: z, helium: y, alpha, age };
        let q = parse_params_file(&generate_params_file(&p)).unwrap();
        prop_assert!((p.mass - q.mass).abs() <= p.mass * 1e-6);
        prop_assert!((p.age - q.age).abs() <= p.age * 1e-6);
        prop_assert!((p.metallicity - q.metallicity).abs() <= p.metallicity * 1e-6);
    }

    #[test]
    fn garbage_never_parses_as_observation(text in "[ -~\\n]{0,400}") {
        // anything that parses must have come through the rigid grammar:
        // header present, NMODES consistent, END terminated
        if let Ok(obs) = parse_observation_file(&text) {
            prop_assert!(text.starts_with("# AMP asteroseismology input v1"));
            prop_assert!(text.contains("END"));
            let nmodes_line = format!("NMODES {}", obs.modes.len());
            prop_assert!(text.contains(&nmodes_line));
        }
    }

    #[test]
    fn garbage_never_parses_as_params(text in "[ -~\\n]{0,200}") {
        if parse_params_file(&text).is_ok() {
            prop_assert!(text.starts_with("# AMP direct model input v1"));
            prop_assert!(text.contains("MASS"));
            prop_assert!(text.contains("END"));
        }
    }

    #[test]
    fn truncated_files_rejected(obs in arb_observed(), cut in 0.0f64..1.0) {
        let text = generate_observation_file(&obs);
        let cut_at = (text.len() as f64 * cut) as usize;
        if cut_at < text.len().saturating_sub(1) {
            let truncated = &text[..cut_at];
            // a strict prefix (losing END or later) must not parse
            prop_assert!(parse_observation_file(truncated).is_err());
        }
    }
}
