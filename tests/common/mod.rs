//! Shared support for the integration suites: canonical fixtures plus
//! the deterministic chaos scheduler the failure-injection and
//! lease-failover tests drive their daemons with.

#![allow(dead_code)]

use amp::prelude::*;
use amp_grid::{DaemonFault, DaemonFaultEvent, DaemonFaultPlan};

/// The canonical "truth" star the failure suites synthesize observations
/// from.
pub fn truth() -> StellarParams {
    StellarParams {
        mass: 1.05,
        metallicity: 0.02,
        helium: 0.27,
        alpha: 2.0,
        age: 4.0,
    }
}

/// A single-daemon kraken deployment with the given work walltime.
pub fn deployment(walltime_hours: f64) -> amp::gridamp::Deployment {
    amp::gridamp::deploy(
        amp::grid::systems::kraken(),
        DaemonConfig {
            work_walltime_hours: walltime_hours,
            ..DaemonConfig::default()
        },
        None,
    )
    .unwrap()
}

/// Drives a fleet of daemons through kill / pause / restart / clock-skew
/// faults on a fixed, seeded schedule ([`DaemonFaultPlan`]). One
/// `begin_round` call per harness round: it applies the faults due that
/// round, restarts daemons whose downtime has ended (as fresh processes
/// with fresh identities and empty memory), and returns the indices of
/// the daemons allowed to tick.
pub struct ChaosScheduler {
    plan: DaemonFaultPlan,
    round: u64,
    /// First round at which each daemon may run again after a kill.
    down_until: Vec<u64>,
    /// First round at which each daemon may run again after a pause.
    paused_until: Vec<u64>,
    /// Killed daemons awaiting their restart-as-new-process.
    restart_pending: Vec<bool>,
    restarts: usize,
}

impl ChaosScheduler {
    pub fn new(n: usize, plan: DaemonFaultPlan) -> Self {
        ChaosScheduler {
            plan,
            round: 0,
            down_until: vec![0; n],
            paused_until: vec![0; n],
            restart_pending: vec![false; n],
            restarts: 0,
        }
    }

    /// The round the *next* `begin_round` call will execute.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// How many daemon processes have been killed and restarted so far.
    pub fn restarts(&self) -> usize {
        self.restarts
    }

    /// Start the next round: restart revived daemons, apply this round's
    /// faults, and return the indices of the daemons that tick.
    pub fn begin_round(&mut self, db: &Db, daemons: &mut [GridAmp]) -> Vec<usize> {
        let round = self.round;
        self.round += 1;

        // Revive killed daemons whose downtime has ended. A restart is a
        // *new process*: fresh identity, empty ownership map, no memory
        // of prior streaks or leases — it must re-earn everything through
        // the lease table.
        for (i, daemon) in daemons.iter_mut().enumerate() {
            if self.restart_pending[i] && round >= self.down_until[i] {
                self.restarts += 1;
                let config = DaemonConfig {
                    daemon_id: format!("gridamp-{i}-r{}", self.restarts),
                    ..daemon.config.clone()
                };
                *daemon = GridAmp::new(db, config).expect("restart daemon");
                self.restart_pending[i] = false;
            }
        }

        let due: Vec<DaemonFaultEvent> = self.plan.at_round(round).cloned().collect();
        for event in due {
            let i = event.daemon;
            match event.fault {
                DaemonFault::Kill { down_ticks } => {
                    self.down_until[i] = round + u64::from(down_ticks);
                    self.restart_pending[i] = true;
                }
                DaemonFault::Pause { ticks } => {
                    self.paused_until[i] = round + u64::from(ticks);
                }
                DaemonFault::ClockSkew { offset_secs } => {
                    daemons[i].clock_skew_secs = offset_secs;
                }
            }
        }

        (0..daemons.len())
            .filter(|&i| round >= self.down_until[i] && round >= self.paused_until[i])
            .collect()
    }
}
