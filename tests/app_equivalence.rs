//! Pre/post-refactor equivalence for the `ScienceApp` extraction.
//!
//! The stellar pipeline was re-implemented behind the `ScienceApp` trait;
//! this suite proves a stellar-only campaign still produces *identical*
//! final simdb states. The golden fixture under `tests/golden/` was
//! captured from the pre-refactor hardwired pipeline (run with
//! `UPDATE_GOLDEN=1` to regenerate), so any drift in payload handling,
//! GA seeding, artifact serialization, accounting, or job bookkeeping
//! through the new indirection fails the byte-for-byte comparison.

mod common;

use amp::prelude::*;
use amp_core::models::{Allocation, Observation};
use amp_core::roles;
use serde_json::json;

const GOLDEN: &str = "tests/golden/stellar_campaign.json";

fn fast_config() -> DaemonConfig {
    DaemonConfig {
        site: "kraken".into(),
        work_walltime_hours: 6.0,
        ..DaemonConfig::default()
    }
}

/// Serialize the campaign-relevant final database state. `result_json` is
/// included verbatim (byte-identical results are the acceptance bar);
/// payloads are parsed so the comparison is about content, and every job
/// row's full bookkeeping rides along.
fn state_digest(db: &Db) -> serde_json::Value {
    let admin = db.connect(roles::ROLE_ADMIN).expect("admin");
    let sims = Manager::<Simulation>::new(admin.clone());
    let jobs = Manager::<GridJobRecord>::new(admin.clone());
    let allocs = Manager::<Allocation>::new(admin.clone());
    let stars = Manager::<Star>::new(admin);

    let mut sim_rows = Vec::new();
    for sim in sims.all().expect("sims") {
        let payload: serde_json::Value =
            serde_json::from_str(&sim.payload_json).expect("payload parses");
        let result: serde_json::Value = match &sim.result_json {
            // Verbatim: any re-serialization drift must surface, so keep
            // the raw string, not a parsed tree.
            Some(r) => json!({ "raw": r }),
            None => serde_json::Value::Null,
        };
        sim_rows.push(json!({
            "id": sim.id,
            "kind": sim.kind.as_str(),
            "status": sim.status.as_str(),
            "status_message": sim.status_message,
            "progress": sim.progress,
            "created_at": sim.created_at,
            "started_at": sim.started_at,
            "completed_at": sim.completed_at,
            "held_from": sim.held_from,
            "payload": payload,
            "result": result,
        }));
    }

    let mut job_rows = Vec::new();
    for j in jobs.all().expect("jobs") {
        job_rows.push(json!({
            "simulation_id": j.simulation_id,
            "purpose": j.purpose.as_str(),
            "ga_run": j.ga_run,
            "continuation": j.continuation,
            "gram_handle": j.gram_handle,
            "site": j.site,
            "status": j.status.as_str(),
            "cores": j.cores,
            "submitted_at": j.submitted_at,
            "started_at": j.started_at,
            "ended_at": j.ended_at,
            "detail": j.detail,
        }));
    }

    let alloc_rows: Vec<serde_json::Value> = allocs
        .all()
        .expect("allocs")
        .into_iter()
        .map(|a| json!({ "account": a.account, "su_used": a.su_used }))
        .collect();
    let star_rows: Vec<serde_json::Value> = stars
        .all()
        .expect("stars")
        .into_iter()
        .map(|s| json!({ "identifier": s.identifier, "has_results": s.has_results }))
        .collect();

    json!({
        "simulations": sim_rows,
        "jobs": job_rows,
        "allocations": alloc_rows,
        "stars": star_rows,
    })
}

/// The canonical stellar campaign: one direct run plus one small
/// optimization ensemble, driven to completion by a single daemon.
fn run_stellar_campaign() -> serde_json::Value {
    let mut dep =
        amp::gridamp::deploy(amp::grid::systems::kraken(), fast_config(), None).expect("deploy");
    let (user, star, alloc, obs) =
        amp::gridamp::seed_fixtures(&dep.db, "kraken", &common::truth(), 1).expect("fixtures");

    let web = dep.db.connect(roles::ROLE_WEB).expect("web");
    let sims = Manager::<Simulation>::new(web);
    let mut direct =
        Simulation::new_direct(star, user, StellarParams::benchmark(), "kraken", alloc, 0);
    sims.create(&mut direct).expect("direct sim");
    let mut optimization = Simulation::new_optimization(
        star,
        user,
        amp::gridamp::small_spec(5),
        obs,
        "kraken",
        alloc,
        0,
    );
    sims.create(&mut optimization).expect("optimization sim");

    dep.daemon.run_until_settled(&dep.grid, 24.0 * 14.0);

    let admin = dep.db.connect(roles::ROLE_ADMIN).expect("admin");
    for sim in Manager::<Simulation>::new(admin).all().expect("sims") {
        assert_eq!(
            sim.status,
            SimStatus::Done,
            "sim {:?} ended {} ({})",
            sim.id,
            sim.status,
            sim.status_message
        );
    }
    state_digest(&dep.db)
}

#[test]
fn stellar_campaign_matches_prerefactor_golden() {
    let digest = run_stellar_campaign();
    let rendered = serde_json::to_string_pretty(&digest).expect("digest renders");

    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all("tests/golden").expect("golden dir");
        std::fs::write(GOLDEN, &rendered).expect("write golden");
        return;
    }

    let golden = std::fs::read_to_string(GOLDEN)
        .expect("golden fixture missing — run with UPDATE_GOLDEN=1 to capture");
    assert_eq!(
        rendered, golden,
        "final simdb state drifted from the pre-refactor stellar campaign"
    );
}

/// The campaign is deterministic run-to-run in the same build — the
/// precondition for the golden comparison to mean anything.
#[test]
fn stellar_campaign_is_deterministic() {
    let a = run_stellar_campaign();
    let b = run_stellar_campaign();
    assert_eq!(a, b);
}

/// Observation payloads round-trip exactly through the database: the GA's
/// staged input file must regenerate from `data_json` without drift.
#[test]
fn observation_regenerates_identical_input_file() {
    let dep =
        amp::gridamp::deploy(amp::grid::systems::kraken(), fast_config(), None).expect("deploy");
    let (_, _, _, obs_id) =
        amp::gridamp::seed_fixtures(&dep.db, "kraken", &common::truth(), 1).expect("fixtures");
    let admin = dep.db.connect(roles::ROLE_ADMIN).expect("admin");
    let obs = Manager::<Observation>::new(admin).get(obs_id).expect("obs");
    let decoded = obs.observed().expect("decodes");
    let text_a = amp_core::marshal::generate_observation_file(&decoded);
    let text_b = amp_core::marshal::generate_observation_file(&obs.observed().expect("decodes"));
    assert_eq!(text_a, text_b);
    assert!(text_a.contains(&decoded.identifier));
}
