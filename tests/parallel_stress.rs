//! Multi-worker stress: 64 simulations spread over four TeraGrid systems
//! (frost, kraken, lonestar, ranger) with injected faults — a permanent
//! GRAM/GridFTP outage on ranger (escalating to HOLD through the
//! transient-storm cap) and a recoverable outage window on lonestar.
//! The parallel engine must reach quiescence in a bounded number of
//! ticks (no deadlock), lose no transitions, duplicate no submissions,
//! and account transients/holds exactly as the sequential engine does.

use amp::prelude::*;
use std::collections::{BTreeMap, HashSet};

const SIMS: usize = 64;
const SYSTEMS: [&str; 4] = ["frost", "kraken", "lonestar", "ranger"];

struct StressOutcome {
    statuses: BTreeMap<i64, (String, Option<String>, String)>,
    transitions: BTreeMap<i64, Vec<(String, String)>>,
    transient_errors: usize,
    new_holds: usize,
    ticks: usize,
    jobs: Vec<GridJobRecord>,
}

fn run_stress(workers: usize) -> StressOutcome {
    let mut dep = amp::gridamp::deploy_multi(
        vec![
            amp::grid::systems::frost(),
            amp::grid::systems::kraken(),
            amp::grid::systems::lonestar(),
            amp::grid::systems::ranger(),
        ],
        DaemonConfig {
            workers,
            max_transient_retries: 3,
            ..DaemonConfig::default()
        },
        None,
    )
    .unwrap();

    // ranger: down for good — its simulations must storm out to HOLD
    dep.grid.faults.add_outage(
        "ranger",
        Service::Both,
        amp_grid::SimTime(0),
        amp_grid::SimTime(u64::MAX / 2),
    );
    // lonestar: a 2.5-hour outage window — transient, must recover
    dep.grid.faults.add_outage(
        "lonestar",
        Service::Both,
        amp_grid::SimTime(1_800),
        amp_grid::SimTime(10_800),
    );

    let truth = StellarParams {
        mass: 1.0,
        metallicity: 0.02,
        helium: 0.27,
        alpha: 2.0,
        age: 4.0,
    };
    let (user, star, frost_alloc, _obs) =
        amp::gridamp::seed_fixtures(&dep.db, "frost", &truth, 9).unwrap();

    // seed_fixtures granted frost; the other three systems get their own
    let admin = dep.db.connect(amp::core::roles::ROLE_ADMIN).unwrap();
    let allocs = Manager::<Allocation>::new(admin.clone());
    let mut alloc_by_system: BTreeMap<&str, i64> = BTreeMap::new();
    alloc_by_system.insert("frost", frost_alloc);
    for system in &SYSTEMS[1..] {
        let mut alloc = Allocation::new(system, &format!("TG-AST09003-{system}"), 10_000_000.0);
        allocs.create(&mut alloc).unwrap();
        alloc_by_system.insert(system, alloc.id.unwrap());
    }

    let web = dep.db.connect(amp::core::roles::ROLE_WEB).unwrap();
    let sims = Manager::<Simulation>::new(web);
    for i in 0..SIMS {
        let system = SYSTEMS[i % SYSTEMS.len()];
        let params = StellarParams {
            mass: 0.8 + 0.005 * i as f64,
            ..StellarParams::sun()
        };
        let mut sim =
            Simulation::new_direct(star, user, params, system, alloc_by_system[system], 0);
        sims.create(&mut sim).unwrap();
    }

    let all_sims = Manager::<Simulation>::new(admin.clone());
    let mut transitions: BTreeMap<i64, Vec<(String, String)>> = BTreeMap::new();
    let mut transient_errors = 0;
    let mut new_holds = 0;
    let mut ticks = 0;
    loop {
        let report = dep.daemon.tick(&dep.grid);
        ticks += 1;
        transient_errors += report.transient_errors;
        new_holds += report.new_holds;
        for (id, from, to) in &report.transitions {
            transitions
                .entry(*id)
                .or_default()
                .push((from.as_str().into(), to.as_str().into()));
        }
        let settled = all_sims
            .all()
            .unwrap()
            .iter()
            .all(|s| matches!(s.status, SimStatus::Done | SimStatus::Hold));
        if settled {
            break;
        }
        // the no-deadlock bound: quiescence or bust
        assert!(
            ticks < 3_000,
            "stress run did not settle (workers={workers})"
        );
        dep.grid.advance(SimDuration::from_secs(300));
    }

    let statuses = all_sims
        .all()
        .unwrap()
        .into_iter()
        .map(|s| {
            (
                s.id.unwrap(),
                (s.status.as_str().to_string(), s.held_from.clone(), s.system),
            )
        })
        .collect();
    let jobs = Manager::<GridJobRecord>::new(admin).all().unwrap();

    StressOutcome {
        statuses,
        transitions,
        transient_errors,
        new_holds,
        ticks,
        jobs,
    }
}

#[test]
fn sixty_four_sims_four_sites_with_faults_settle_correctly_in_parallel() {
    let out = run_stress(8);

    assert_eq!(out.statuses.len(), SIMS);
    for (sim, (status, _held_from, system)) in &out.statuses {
        if system == "ranger" {
            assert_eq!(status, "HOLD", "sim {sim} on downed ranger");
        } else {
            assert_eq!(status, "DONE", "sim {sim} on {system}");
        }
    }
    // every ranger sim burned through the transient cap: retries + the
    // escalating attempt, each counted once — nothing lost, nothing extra
    let ranger_sims = out
        .statuses
        .values()
        .filter(|(_, _, sys)| sys == "ranger")
        .count();
    assert_eq!(ranger_sims, SIMS / 4);
    assert_eq!(out.new_holds, ranger_sims);
    assert!(
        out.transient_errors >= ranger_sims * 4,
        "expected >= {} transient polls, saw {}",
        ranger_sims * 4,
        out.transient_errors
    );

    // no lost transitions: every completed simulation shows the full
    // Listing-1 chain, in order, exactly once
    let happy: Vec<(String, String)> = SimStatus::happy_path()
        .windows(2)
        .map(|w| (w[0].as_str().to_string(), w[1].as_str().to_string()))
        .collect();
    for (sim, (status, _, _)) in &out.statuses {
        if status == "DONE" {
            assert_eq!(
                out.transitions.get(sim),
                Some(&happy),
                "sim {sim} lost or duplicated a transition"
            );
        }
    }

    // no duplicate submissions: (sim, purpose, ga_run, continuation) is
    // unique across every job record the daemon wrote
    let mut seen = HashSet::new();
    for j in &out.jobs {
        let key = (
            j.simulation_id,
            format!("{:?}", j.purpose),
            j.ga_run,
            j.continuation,
        );
        assert!(seen.insert(key.clone()), "duplicate submission {key:?}");
    }
}

#[test]
fn parallel_hold_and_streak_accounting_matches_sequential() {
    let sequential = run_stress(1);
    let parallel = run_stress(8);

    assert_eq!(parallel.ticks, sequential.ticks, "tick counts diverged");
    assert_eq!(parallel.statuses, sequential.statuses);
    assert_eq!(parallel.transitions, sequential.transitions);
    assert_eq!(parallel.new_holds, sequential.new_holds);
    assert_eq!(parallel.transient_errors, sequential.transient_errors);
}

#[test]
fn transient_backoff_schedules_retries_exponentially() {
    // One simulation against a permanently-down site, backoff base 1:
    // attempts land on ticks 1, 2, 4 and 8 (streak s retries after
    // 1 << (s-1) ticks), and the fourth attempt crosses the cap of 3
    // into HOLD. Ticks in between must not count the sim as stepped.
    let mut dep = amp::gridamp::deploy(
        amp::grid::systems::kraken(),
        DaemonConfig {
            max_transient_retries: 3,
            transient_backoff_base_ticks: 1,
            ..DaemonConfig::default()
        },
        None,
    )
    .unwrap();
    dep.grid.faults.add_outage(
        "kraken",
        Service::Both,
        amp_grid::SimTime(0),
        amp_grid::SimTime(u64::MAX / 2),
    );
    let truth = StellarParams::sun();
    let (user, star, alloc, _obs) =
        amp::gridamp::seed_fixtures(&dep.db, "kraken", &truth, 10).unwrap();
    let web = dep.db.connect(amp::core::roles::ROLE_WEB).unwrap();
    let mut sim = Simulation::new_direct(star, user, StellarParams::sun(), "kraken", alloc, 0);
    let sim_id = Manager::<Simulation>::new(web).create(&mut sim).unwrap();

    let mut stepped_on: Vec<usize> = Vec::new();
    for tick in 1..=12 {
        let report = dep.daemon.tick(&dep.grid);
        if report.sims_stepped > 0 {
            stepped_on.push(tick);
        }
        dep.grid.advance(SimDuration::from_secs(300));
    }
    assert_eq!(stepped_on, vec![1, 2, 4, 8], "backoff schedule");

    let admin = dep.db.connect(amp::core::roles::ROLE_ADMIN).unwrap();
    let held = Manager::<Simulation>::new(admin).get(sim_id).unwrap();
    assert_eq!(held.status, SimStatus::Hold);
    assert!(
        held.status_message.contains("transient storm"),
        "{}",
        held.status_message
    );
}
