//! Property tests for the portal's template engine: rendering never
//! panics, default interpolation always escapes, loops/ifs behave like
//! their semantics, and parse errors are total (no crashes on any input).

use amp::portal::templates::{render, Template};
use proptest::prelude::*;
use serde_json::json;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn parser_is_total(src in "[ -~{}%\\n]{0,300}") {
        // any printable input either parses or errors; never panics
        let _ = Template::parse(&src);
    }

    #[test]
    fn escaped_interpolation_never_leaks_html(s in "[ -~]{0,80}") {
        let out = render("{{ v }}", &json!({ "v": s })).unwrap();
        prop_assert!(!out.contains('<'));
        prop_assert!(!out.contains('>'));
        prop_assert!(!out.contains('"'));
        // escaping is reversible in spirit: plain alphanumerics unchanged
        if s.chars().all(|c| c.is_ascii_alphanumeric() || c == ' ') {
            prop_assert_eq!(out, s);
        }
    }

    #[test]
    fn safe_filter_passes_through(s in "[a-zA-Z0-9<>&\"']{0,60}") {
        let out = render("{{ v|safe }}", &json!({ "v": s })).unwrap();
        prop_assert_eq!(out, s);
    }

    #[test]
    fn for_loop_renders_once_per_item(n in 0usize..30) {
        let items: Vec<i64> = (0..n as i64).collect();
        let out = render(
            "{% for x in xs %}[{{ x }}]{% endfor %}",
            &json!({ "xs": items }),
        )
        .unwrap();
        prop_assert_eq!(out.matches('[').count(), n);
        for i in 0..n {
            let token = format!("[{i}]");
            prop_assert!(out.contains(&token));
        }
    }

    #[test]
    fn if_matches_truthiness(b in any::<bool>(), n in -5i64..5) {
        let out = render(
            "{% if flag %}T{% else %}F{% endif %}{% if num %}N{% endif %}",
            &json!({ "flag": b, "num": n }),
        )
        .unwrap();
        prop_assert_eq!(out.contains('T'), b);
        prop_assert_eq!(out.contains('F'), !b);
        prop_assert_eq!(out.contains('N'), n != 0);
    }

    #[test]
    fn rendering_is_deterministic(src in "[ -~]{0,100}", v in "[ -~]{0,40}") {
        if let Ok(t) = Template::parse(&src) {
            let ctx = json!({ "v": v });
            prop_assert_eq!(t.render(&ctx), t.render(&ctx));
        }
    }

    #[test]
    fn nested_loops_multiply(rows in 0usize..8, cols in 0usize..8) {
        let grid: Vec<Vec<i64>> = (0..rows)
            .map(|_| (0..cols as i64).collect())
            .collect();
        // bind each row under an object so the inner loop can reach it
        let wrapped: Vec<serde_json::Value> =
            grid.iter().map(|r| json!({ "cells": r })).collect();
        let out = render(
            "{% for r in grid %}{% for c in r.cells %}#{% endfor %}{% endfor %}",
            &json!({ "grid": wrapped }),
        )
        .unwrap();
        prop_assert_eq!(out.matches('#').count(), rows * cols);
    }
}
