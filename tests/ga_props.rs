//! Property tests for the GA engine: decimal encoding round-trips,
//! checkpoint/resume is exactly equivalent to an uninterrupted run at any
//! interruption point, elitism keeps best fitness monotone, and restart
//! files survive text round-trips.

use amp::ga::{Checkpoint, Ga, GaConfig, Problem, Sphere};
use amp_ga::Genome;
use proptest::prelude::*;

fn cfg(population: usize, generations: u32) -> GaConfig {
    GaConfig {
        population,
        generations,
        ..GaConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn genome_roundtrip(values in proptest::collection::vec(0.0f64..1.0, 1..8),
                        nd in 1usize..9) {
        let g = Genome::encode(&values, nd);
        prop_assert!(g.validate());
        let decoded = g.decode();
        let eps = 10f64.powi(-(nd as i32));
        for (a, b) in values.iter().zip(decoded.iter()) {
            prop_assert!((a - b).abs() < eps, "{a} vs {b} at nd={nd}");
            prop_assert!((0.0..1.0).contains(b));
        }
        // re-encoding the decoded value is a fixed point
        prop_assert_eq!(Genome::encode(&decoded, nd), g);
    }

    #[test]
    fn resume_equivalence_at_any_cut(seed in 0u64..1000, cut in 1u32..29) {
        let p = Sphere { target: vec![0.42, 0.77] };
        let total = 30u32;
        let mut full = Ga::new(&p, cfg(24, total), seed);
        full.run(u32::MAX);

        let mut part = Ga::new(&p, cfg(24, total), seed);
        part.run(cut);
        let text = Checkpoint::capture(&part).to_text();
        let cp = Checkpoint::from_text(&text).unwrap();
        let mut resumed = cp.resume(&p).unwrap();
        resumed.run(u32::MAX);

        prop_assert_eq!(resumed.generation(), full.generation());
        prop_assert_eq!(&resumed.best().genome, &full.best().genome);
        prop_assert_eq!(resumed.history().last(), full.history().last());
    }

    #[test]
    fn elitism_monotone_for_any_seed(seed in 0u64..500) {
        let p = Sphere { target: vec![0.3, 0.6, 0.9] };
        let mut ga = Ga::new(&p, cfg(20, 25), seed);
        let mut best = ga.best().fitness;
        while !ga.finished() {
            let s = ga.step();
            prop_assert!(s.best_fitness >= best - 1e-12);
            best = s.best_fitness;
        }
    }

    #[test]
    fn population_and_phenotypes_stay_valid(seed in 0u64..200, steps in 1u32..20) {
        let p = Sphere { target: vec![0.5; 4] };
        let mut ga = Ga::new(&p, cfg(18, 100), seed);
        ga.run(steps);
        prop_assert_eq!(ga.population().len(), 18);
        for ind in ga.population() {
            prop_assert!(ind.genome.validate());
            prop_assert_eq!(ind.phenotype.len(), 4);
            for x in &ind.phenotype {
                prop_assert!((0.0..1.0).contains(x));
            }
            prop_assert!((0.0..=1.0).contains(&ind.fitness));
            // cached fitness is consistent with the problem
            prop_assert!((ind.fitness - p.fitness(&ind.phenotype)).abs() < 1e-12);
        }
    }

    #[test]
    fn checkpoint_progress_monotone(seed in 0u64..100) {
        let p = Sphere { target: vec![0.1] };
        let mut ga = Ga::new(&p, cfg(12, 20), seed);
        let mut prev = Checkpoint::capture(&ga).progress();
        while !ga.finished() {
            ga.step();
            let cur = Checkpoint::capture(&ga).progress();
            prop_assert!(cur > prev);
            prev = cur;
        }
        prop_assert_eq!(prev, 1.0);
    }
}
