//! Property tests for the database substrate: constraint invariants hold
//! under arbitrary operation sequences, WAL replay reproduces state
//! exactly, and query pagination tiles the full result set.

use amp::simdb::db::LogOp;
use amp::simdb::{Column, Database, DbError, OnDelete, Op, Query, TableSchema, Value, ValueType};
use proptest::prelude::*;

/// A random mutation against the two-table (parent/child) fixture.
#[derive(Debug, Clone)]
enum Action {
    InsertParent { name: u16 },
    InsertChild { parent_ref: u8, v: i8 },
    DeleteParent { pick: u8 },
    DeleteChild { pick: u8 },
    UpdateChild { pick: u8, v: i8 },
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0u16..50).prop_map(|name| Action::InsertParent { name }),
        (any::<u8>(), any::<i8>())
            .prop_map(|(parent_ref, v)| Action::InsertChild { parent_ref, v }),
        any::<u8>().prop_map(|pick| Action::DeleteParent { pick }),
        any::<u8>().prop_map(|pick| Action::DeleteChild { pick }),
        (any::<u8>(), any::<i8>()).prop_map(|(pick, v)| Action::UpdateChild { pick, v }),
    ]
}

fn fixture() -> Database {
    let mut db = Database::new();
    db.create_table(TableSchema::new(
        "parent",
        vec![Column::new("name", ValueType::Text).not_null().unique()],
    ))
    .unwrap();
    db.create_table(TableSchema::new(
        "child",
        vec![
            Column::new("parent_id", ValueType::Int)
                .not_null()
                .references("parent", OnDelete::Cascade)
                .indexed(),
            Column::new("v", ValueType::Int),
        ],
    ))
    .unwrap();
    db
}

fn pick_id(db: &Database, table: &str, pick: u8) -> Option<i64> {
    let rows = db.select(table, &Query::new()).ok()?;
    if rows.is_empty() {
        None
    } else {
        Some(rows[pick as usize % rows.len()].0)
    }
}

fn apply(db: &mut Database, action: &Action, log: &mut Vec<LogOp>) {
    let result: Result<Vec<LogOp>, DbError> = match action {
        Action::InsertParent { name } => db
            .insert("parent", &[("name", format!("p{name}").into())])
            .map(|(_, op)| vec![op]),
        Action::InsertChild { parent_ref, v } => match pick_id(db, "parent", *parent_ref) {
            Some(pid) => db
                .insert(
                    "child",
                    &[("parent_id", Value::Int(pid)), ("v", Value::Int(*v as i64))],
                )
                .map(|(_, op)| vec![op]),
            None => Err(DbError::NoSuchRow {
                table: "parent".into(),
                id: -1,
            }),
        },
        Action::DeleteParent { pick } => match pick_id(db, "parent", *pick) {
            Some(id) => db.delete("parent", id),
            None => Err(DbError::NoSuchRow {
                table: "parent".into(),
                id: -1,
            }),
        },
        Action::DeleteChild { pick } => match pick_id(db, "child", *pick) {
            Some(id) => db.delete("child", id),
            None => Err(DbError::NoSuchRow {
                table: "child".into(),
                id: -1,
            }),
        },
        Action::UpdateChild { pick, v } => match pick_id(db, "child", *pick) {
            Some(id) => db
                .update("child", id, &[("v", Value::Int(*v as i64))])
                .map(|op| vec![op]),
            None => Err(DbError::NoSuchRow {
                table: "child".into(),
                id: -1,
            }),
        },
    };
    if let Ok(ops) = result {
        log.extend(ops);
    }
}

fn invariants_hold(db: &Database) -> Result<(), String> {
    // unique names among parents
    let parents = db
        .select("parent", &Query::new())
        .map_err(|e| e.to_string())?;
    let mut names: Vec<String> = parents
        .iter()
        .map(|(_, r)| r[0].as_text().unwrap().to_string())
        .collect();
    let n = names.len();
    names.sort();
    names.dedup();
    if names.len() != n {
        return Err("duplicate parent names".into());
    }
    // referential integrity: every child's parent exists
    let children = db
        .select("child", &Query::new())
        .map_err(|e| e.to_string())?;
    for (cid, row) in &children {
        let pid = row[0].as_int().unwrap();
        if !parents.iter().any(|(id, _)| id == &pid) {
            return Err(format!("child {cid} dangles to parent {pid}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn invariants_survive_random_operations(actions in proptest::collection::vec(arb_action(), 1..120)) {
        let mut db = fixture();
        let mut log = Vec::new();
        for a in &actions {
            apply(&mut db, a, &mut log);
            invariants_hold(&db).map_err(TestCaseError::fail)?;
        }
    }

    #[test]
    fn wal_replay_reproduces_state(actions in proptest::collection::vec(arb_action(), 1..80)) {
        let mut db = fixture();
        let mut log = Vec::new();
        for a in &actions {
            apply(&mut db, a, &mut log);
        }
        // replay the committed ops into a fresh database
        let mut replayed = fixture();
        for op in &log {
            replayed.apply_log_op(op).map_err(|e| TestCaseError::fail(e.to_string()))?;
        }
        for table in ["parent", "child"] {
            let a = db.select(table, &Query::new()).unwrap();
            let b = replayed.select(table, &Query::new()).unwrap();
            prop_assert_eq!(a, b, "table {} diverged", table);
        }
    }

    #[test]
    fn pagination_tiles_results(n_rows in 0usize..60, page in 1usize..12) {
        let mut db = fixture();
        for i in 0..n_rows {
            db.insert("parent", &[("name", format!("p{i:03}").into())]).unwrap();
        }
        let all = db.select("parent", &Query::new().order_by("name")).unwrap();
        let mut tiled = Vec::new();
        let mut offset = 0;
        loop {
            let chunk = db
                .select("parent", &Query::new().order_by("name").offset(offset).limit(page))
                .unwrap();
            if chunk.is_empty() { break; }
            offset += chunk.len();
            tiled.extend(chunk);
        }
        prop_assert_eq!(all, tiled);
    }

    #[test]
    fn filters_partition_rows(n in 0usize..50, pivot in -50i64..50) {
        let mut db = fixture();
        db.insert("parent", &[("name", "root".into())]).unwrap();
        for i in 0..n {
            db.insert("child", &[("parent_id", Value::Int(1)), ("v", Value::Int(i as i64 - 25))]).unwrap();
        }
        let lt = db.count("child", &Query::new().filter("v", Op::Lt, Value::Int(pivot))).unwrap();
        let ge = db.count("child", &Query::new().filter("v", Op::Ge, Value::Int(pivot))).unwrap();
        prop_assert_eq!(lt + ge, n);
    }
}
