//! Equivalence oracle for the simdb query planner, plus WAL group-commit
//! crash-replay properties.
//!
//! The planner (`crates/simdb/src/query.rs`) picks among unique probes,
//! secondary-index probes, ordered-index range scans, index-ordered
//! scans, and full scans. Whatever plan it picks, the observable results
//! must be byte-identical — ids, row contents, ordering, pagination — to
//! a deliberately naive reference executor that scans everything, filters
//! with its own reimplementation of the predicate semantics, sorts with a
//! full comparator, and slices. Random schemas-worth of data and random
//! queries drive both sides.
//!
//! The WAL properties check the group-commit protocol: a log produced by
//! batched appends (single- or multi-threaded) must have contiguous
//! sequence numbers, and *every line prefix* of it must replay into a
//! consistent database — a crash can truncate the tail but never tear or
//! reorder committed records.

use amp::simdb::db::LogOp;
use amp::simdb::wal::Wal;
use amp::simdb::{Column, Database, Op, OrderBy, Plan, Query, Row, TableSchema, Value, ValueType};
use proptest::prelude::*;
use std::cmp::Ordering;
use std::path::PathBuf;

// ---------------------------------------------------------------------------
// Fixture: one table exercising every index shape the planner knows about.
// ---------------------------------------------------------------------------

const TABLE: &str = "m";
// row layout: u (Int unique not-null -> unique probe), s (Text indexed
// not-null -> secondary probe + index-ordered scan), k (Int indexed
// nullable -> secondary probe with NULL holes), p (Int plain nullable ->
// never index-drivable)
const COLS: [&str; 4] = ["u", "s", "k", "p"];
const COL_S: usize = 1;

fn fixture() -> Database {
    let mut db = Database::new();
    db.create_table(TableSchema::new(
        TABLE,
        vec![
            Column::new("u", ValueType::Int).not_null().unique(),
            Column::new("s", ValueType::Text).indexed().not_null(),
            Column::new("k", ValueType::Int).indexed(),
            Column::new("p", ValueType::Int),
        ],
    ))
    .unwrap();
    db
}

/// One random row. `u` gets a collision-free value derived from `i`.
fn insert_row(db: &mut Database, i: usize, s: u8, k: Option<i8>, p: Option<i8>) {
    db.insert(
        TABLE,
        &[
            ("u", Value::Int(i as i64 * 3 + 1)),
            ("s", format!("s{}", s % 5).into()),
            ("k", k.map_or(Value::Null, |v| Value::Int(v as i64))),
            ("p", p.map_or(Value::Null, |v| Value::Int(v as i64))),
        ],
    )
    .unwrap();
}

// ---------------------------------------------------------------------------
// Random queries
// ---------------------------------------------------------------------------

/// A comparison value that sometimes hits, sometimes misses, sometimes is
/// NULL or the wrong flavour entirely.
fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-160i64..160).prop_map(Value::Int),
        (0u8..7).prop_map(|s| format!("s{s}").into()),
        Just(Value::Null),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Eq),
        Just(Op::Ne),
        Just(Op::Lt),
        Just(Op::Le),
        Just(Op::Gt),
        Just(Op::Ge),
        Just(Op::IsNull),
        Just(Op::NotNull),
        proptest::collection::vec(arb_value(), 0..4).prop_map(Op::In),
    ]
}

fn arb_filter() -> impl Strategy<Value = (usize, Op, Value)> {
    (0usize..COLS.len(), arb_op(), arb_value())
}

fn arb_order() -> impl Strategy<Value = Vec<OrderBy>> {
    proptest::collection::vec(
        (0usize..=COLS.len(), any::<bool>()).prop_map(|(ci, descending)| OrderBy {
            // index == len means "order by primary key"
            column: if ci == COLS.len() {
                "id".into()
            } else {
                COLS[ci].into()
            },
            descending,
        }),
        0..3,
    )
}

#[derive(Debug, Clone)]
struct QSpec {
    filters: Vec<(usize, Op, Value)>,
    order: Vec<OrderBy>,
    offset: usize,
    limit: Option<usize>,
}

fn arb_query() -> impl Strategy<Value = QSpec> {
    (
        proptest::collection::vec(arb_filter(), 0..4),
        arb_order(),
        0usize..25,
        proptest::option::of(0usize..25),
    )
        .prop_map(|(filters, order, offset, limit)| QSpec {
            filters,
            order,
            offset,
            limit,
        })
}

fn build_query(spec: &QSpec) -> Query {
    let mut q = Query::new();
    for (ci, op, v) in &spec.filters {
        q = q.filter(COLS[*ci], op.clone(), v.clone());
    }
    for o in &spec.order {
        q = if o.descending {
            q.order_by_desc(&o.column)
        } else {
            q.order_by(&o.column)
        };
    }
    q = q.offset(spec.offset);
    if let Some(l) = spec.limit {
        q = q.limit(l);
    }
    q
}

// ---------------------------------------------------------------------------
// Naive reference executor — scan everything, own predicate semantics.
// ---------------------------------------------------------------------------

fn ref_matches(op: &Op, rhs: &Value, cell: &Value) -> bool {
    match op {
        Op::IsNull => cell.is_null(),
        Op::NotNull => !cell.is_null(),
        Op::In(vals) => vals.iter().any(|v| v.key_eq(cell)),
        _ if cell.is_null() => false,
        Op::Eq => cell.key_eq(rhs),
        Op::Ne => !cell.key_eq(rhs),
        Op::Lt => cell.total_cmp(rhs).is_lt(),
        Op::Le => cell.total_cmp(rhs).is_le(),
        Op::Gt => cell.total_cmp(rhs).is_gt(),
        Op::Ge => cell.total_cmp(rhs).is_ge(),
        _ => unreachable!("reference oracle never generates text ops"),
    }
}

fn ref_execute(db: &Database, spec: &QSpec) -> Vec<(i64, Row)> {
    let mut rows: Vec<(i64, Row)> = db
        .select(TABLE, &Query::new())
        .unwrap()
        .into_iter()
        .filter(|(_, row)| {
            spec.filters
                .iter()
                .all(|(ci, op, rhs)| ref_matches(op, rhs, &row[*ci]))
        })
        .collect();
    let cmp = |a: &(i64, Row), b: &(i64, Row)| -> Ordering {
        for o in &spec.order {
            let ord = if o.column == "id" {
                a.0.cmp(&b.0)
            } else {
                let ci = COLS.iter().position(|c| *c == o.column).unwrap();
                a.1[ci].total_cmp(&b.1[ci])
            };
            let ord = if o.descending { ord.reverse() } else { ord };
            if !ord.is_eq() {
                return ord;
            }
        }
        a.0.cmp(&b.0)
    };
    rows.sort_by(cmp);
    let start = spec.offset.min(rows.len());
    let end = spec
        .limit
        .map_or(rows.len(), |l| (start + l).min(rows.len()));
    rows[start..end].to_vec()
}

// ---------------------------------------------------------------------------
// WAL helpers
// ---------------------------------------------------------------------------

fn wal_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("amp_qp_wal_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Apply a batch of mutations to the live db, returning the LogOps the
/// engine emitted for them. `uniq` survives across batches so re-inserts
/// after deletes never collide on the unique column.
fn mutate(db: &mut Database, seeds: &[(u8, i8)], uniq: &mut i64) -> Vec<LogOp> {
    let mut ops = Vec::new();
    for (kind, v) in seeds {
        match kind % 3 {
            0 => {
                *uniq += 1;
                let (_, op) = db
                    .insert(
                        TABLE,
                        &[
                            ("u", Value::Int(*uniq * 3 + 1_000_000)),
                            ("s", format!("s{}", v.rem_euclid(5)).into()),
                            ("k", Value::Int(*v as i64)),
                            ("p", Value::Null),
                        ],
                    )
                    .unwrap();
                ops.push(op);
            }
            1 => {
                let ids: Vec<i64> = db
                    .select(TABLE, &Query::new())
                    .unwrap()
                    .into_iter()
                    .map(|(id, _)| id)
                    .collect();
                if let Some(&id) = ids.get(*v as usize % ids.len().max(1)) {
                    ops.push(
                        db.update(TABLE, id, &[("p", Value::Int(*v as i64))])
                            .unwrap(),
                    );
                }
            }
            _ => {
                let ids: Vec<i64> = db
                    .select(TABLE, &Query::new())
                    .unwrap()
                    .into_iter()
                    .map(|(id, _)| id)
                    .collect();
                if let Some(&id) = ids.get(*v as usize % ids.len().max(1)) {
                    ops.extend(db.delete(TABLE, id).unwrap());
                }
            }
        }
    }
    ops
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Whatever plan the planner picks, execute/count/project agree with
    /// the naive reference — ids, row contents, order, and pagination.
    #[test]
    fn planner_matches_reference_executor(
        rows in proptest::collection::vec((0u8..7, proptest::option::of(any::<i8>()), proptest::option::of(any::<i8>())), 0..60),
        specs in proptest::collection::vec(arb_query(), 1..8),
    ) {
        let mut db = fixture();
        for (i, (s, k, p)) in rows.iter().enumerate() {
            insert_row(&mut db, i, *s, *k, *p);
        }
        for spec in &specs {
            let q = build_query(spec);
            let expected = ref_execute(&db, spec);
            let got = db.select(TABLE, &q).unwrap();
            let plan = q.explain(db.table(TABLE).unwrap()).unwrap();
            prop_assert_eq!(&got, &expected, "plan {:?} diverged for {:?}", plan, spec);
            prop_assert_eq!(
                db.count(TABLE, &q).unwrap(),
                expected.len(),
                "count under plan {:?} diverged for {:?}", plan, spec
            );
            let proj = db.select_project(TABLE, &q, "s").unwrap();
            let expected_proj: Vec<(i64, Value)> = expected
                .iter()
                .map(|(id, row)| (*id, row[COL_S].clone()))
                .collect();
            prop_assert_eq!(proj, expected_proj, "projection under plan {:?} diverged", plan);
        }
    }

    /// Index-backed plans actually get chosen where expected, and an
    /// unordered query's ids always come back in primary-key order
    /// regardless of which access path produced them.
    #[test]
    fn plans_are_index_backed_and_pk_ordered(
        rows in proptest::collection::vec((0u8..7, proptest::option::of(any::<i8>()), proptest::option::of(any::<i8>())), 1..60),
        pivot in -140i64..140,
    ) {
        let mut db = fixture();
        for (i, (s, k, p)) in rows.iter().enumerate() {
            insert_row(&mut db, i, *s, *k, *p);
        }
        let t = db.table(TABLE).unwrap();
        prop_assert_eq!(
            Query::new().eq("u", 1).explain(t).unwrap(),
            Plan::UniqueProbe { column: "u".into() }
        );
        // when the probed/ranged key set is provably empty the planner is
        // allowed (encouraged) to answer Plan::Empty instead
        let s_hits = rows.iter().filter(|(s, _, _)| s % 5 == 1).count();
        prop_assert_eq!(
            Query::new().eq("s", "s1").explain(t).unwrap(),
            if s_hits > 0 {
                Plan::IndexProbe { columns: vec!["s".into()] }
            } else {
                Plan::Empty
            }
        );
        let range = Query::new().filter("k", Op::Ge, Value::Int(pivot));
        let k_hits = rows
            .iter()
            .filter(|(_, k, _)| k.is_some_and(|k| k as i64 >= pivot))
            .count();
        prop_assert_eq!(
            range.explain(t).unwrap(),
            if k_hits > 0 {
                Plan::RangeScan { columns: vec!["k".into()] }
            } else {
                Plan::Empty
            }
        );
        for q in [Query::new().eq("s", "s2"), range] {
            let ids: Vec<i64> = db.select(TABLE, &q).unwrap().into_iter().map(|(id, _)| id).collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            prop_assert_eq!(ids, sorted);
        }
    }

    /// Group-committed WAL: batched appends produce contiguous seqs, and
    /// every line prefix of the log replays into a consistent database —
    /// the full prefix being exactly the live state.
    #[test]
    fn every_wal_prefix_replays_consistently(
        batches in proptest::collection::vec(
            proptest::collection::vec((any::<u8>(), any::<i8>()), 1..9),
            1..10,
        ),
        case in 0u32..1_000_000,
    ) {
        let dir = wal_dir(&format!("prefix_{case}"));
        let wal = Wal::open(dir.join("db.wal")).unwrap();
        let mut db = fixture();
        let mut uniq = 0i64;
        for batch in &batches {
            let ops = mutate(&mut db, batch, &mut uniq);
            if !ops.is_empty() {
                wal.append(&ops).unwrap();
            }
        }
        let raw = std::fs::read_to_string(wal.path()).unwrap();
        let lines: Vec<&str> = raw.lines().filter(|l| !l.trim().is_empty()).collect();
        for cut in 0..=lines.len() {
            let prefix = lines[..cut].join("\n");
            let pfile = dir.join(format!("prefix_{cut}.wal"));
            std::fs::write(&pfile, &prefix).unwrap();
            let records = Wal::read_records(&pfile).unwrap();
            // contiguous seqs from 0: nothing torn, nothing reordered
            for (i, rec) in records.iter().enumerate() {
                prop_assert_eq!(rec.seq, i as u64);
            }
            let mut replayed = fixture();
            Wal::replay_into(&mut replayed, &records, None).unwrap();
            if cut == lines.len() {
                prop_assert_eq!(
                    db.select(TABLE, &Query::new()).unwrap(),
                    replayed.select(TABLE, &Query::new()).unwrap()
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Concurrent committers racing through the group-commit path: all
/// records land, seqs are contiguous, each batch's ops stay contiguous
/// and in order, and replaying the log reproduces every insert.
#[test]
fn concurrent_group_commit_preserves_batches() {
    let dir = wal_dir("concurrent");
    let wal = std::sync::Arc::new(Wal::open(dir.join("db.wal")).unwrap());
    const THREADS: usize = 8;
    const BATCHES: usize = 20;
    const BATCH: usize = 8;
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let wal = wal.clone();
        handles.push(std::thread::spawn(move || {
            for b in 0..BATCHES {
                let ops: Vec<LogOp> = (0..BATCH)
                    .map(|i| LogOp::Insert {
                        table: TABLE.into(),
                        id: (t * BATCHES * BATCH + b * BATCH + i) as i64 + 1,
                        row: vec![
                            Value::Int((t * BATCHES * BATCH + b * BATCH + i) as i64),
                            format!("s{}", i % 5).into(),
                            Value::Null,
                            Value::Null,
                        ],
                    })
                    .collect();
                wal.append(&ops).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let records = Wal::read_records(wal.path()).unwrap();
    assert_eq!(records.len(), THREADS * BATCHES * BATCH);
    for (i, rec) in records.iter().enumerate() {
        assert_eq!(rec.seq, i as u64, "seq gap at record {i}");
    }
    // ops of one batch must be adjacent and in submission order: batches
    // are identified by consecutive row ids within one thread's range
    let mut i = 0;
    while i < records.len() {
        let LogOp::Insert { id, .. } = &records[i].op else {
            panic!("unexpected op");
        };
        let start = *id;
        assert_eq!(
            (start - 1) % BATCH as i64,
            0,
            "batch does not start on a batch boundary at record {i}"
        );
        for j in 1..BATCH {
            let LogOp::Insert { id, .. } = &records[i + j].op else {
                panic!("unexpected op");
            };
            assert_eq!(*id, start + j as i64, "batch torn at record {}", i + j);
        }
        i += BATCH;
    }
    assert_eq!(wal.last_seq(), Some((THREADS * BATCHES * BATCH) as u64 - 1));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Re-opening a WAL written by group commit resumes the sequence exactly
/// where it left off (streaming-tail `next_seq` recovery).
#[test]
fn reopened_wal_resumes_sequence() {
    let dir = wal_dir("reopen");
    let path = dir.join("db.wal");
    let mut db = fixture();
    let mut uniq = 0i64;
    {
        let wal = Wal::open(&path).unwrap();
        let ops = mutate(&mut db, &[(0, 1), (0, 2), (0, 3)], &mut uniq);
        wal.append(&ops).unwrap();
        assert_eq!(wal.last_seq(), Some(2));
    }
    {
        let wal = Wal::open(&path).unwrap();
        assert_eq!(wal.last_seq(), Some(2));
        let ops = mutate(&mut db, &[(0, 4)], &mut uniq);
        wal.append(&ops).unwrap();
        assert_eq!(wal.last_seq(), Some(3));
    }
    let records = Wal::read_records(&path).unwrap();
    assert_eq!(records.len(), 4);
    let mut replayed = fixture();
    Wal::replay_into(&mut replayed, &records, None).unwrap();
    assert_eq!(
        db.select(TABLE, &Query::new()).unwrap(),
        replayed.select(TABLE, &Query::new()).unwrap()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
