//! Property tests for the forward stellar model: the scaling relations the
//! asteroseismology rests on hold across the entire parameter domain.

use amp::stellar::{
    cost_minutes, echelle, evolution_track, evolve, relative_cost, synthesize, Domain,
    StellarParams,
};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = StellarParams> {
    let d = Domain::default();
    (
        d.mass.lo..d.mass.hi,
        d.metallicity.lo..d.metallicity.hi,
        d.helium.lo..d.helium.hi,
        d.alpha.lo..d.alpha.hi,
        d.age.lo..d.age.hi,
    )
        .prop_map(|(mass, metallicity, helium, alpha, age)| StellarParams {
            mass,
            metallicity,
            helium,
            alpha,
            age,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn model_outputs_physical_when_modelable(p in arb_params()) {
        let d = Domain::default();
        if let Ok(m) = evolve(&p, &d) {
            prop_assert!(m.teff >= 4000.0 && m.teff <= 8000.0);
            prop_assert!(m.luminosity > 0.0);
            prop_assert!(m.radius > 0.0);
            prop_assert!((2.5..5.5).contains(&m.log_g), "log g {}", m.log_g);
            // the large-separation scaling relation holds exactly
            let expected = 135.1 * (p.mass / m.radius.powi(3)).sqrt();
            prop_assert!((m.delta_nu - expected).abs() < 1e-9);
            // frequencies sorted, positive, and centered near nu_max
            prop_assert!(m.frequencies.windows(2).all(|w| w[0].frequency <= w[1].frequency));
            prop_assert!(m.frequencies.iter().all(|f| f.frequency > 0.0));
            let lo = m.frequencies.first().unwrap().frequency;
            let hi = m.frequencies.last().unwrap().frequency;
            prop_assert!(lo < m.nu_max && m.nu_max < hi,
                "nu_max {} outside [{lo}, {hi}]", m.nu_max);
        }
    }

    #[test]
    fn determinism(p in arb_params()) {
        let d = Domain::default();
        let a = evolve(&p, &d);
        let b = evolve(&p, &d);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn echelle_modulo_bounded(p in arb_params()) {
        let d = Domain::default();
        if let Ok(m) = evolve(&p, &d) {
            for pt in echelle(&m.frequencies, m.delta_nu) {
                prop_assert!(pt.modulo >= 0.0 && pt.modulo < m.delta_nu);
            }
        }
    }

    #[test]
    fn cost_bounded_and_benchmark_is_max_region(p in arb_params()) {
        let c = relative_cost(&p);
        prop_assert!((0.45..=1.05).contains(&c), "cost {c}");
        // Table 1 calibration: cost scales linearly with the benchmark
        prop_assert!((cost_minutes(&p, 23.6) - 23.6 * c).abs() < 1e-9);
        // the benchmark star is never undercut by more than the mass term
        prop_assert!(c <= relative_cost(&StellarParams::benchmark()) * 1.05);
    }

    #[test]
    fn track_is_causal(p in arb_params()) {
        let d = Domain::default();
        let track = evolution_track(&p, &d, 25).unwrap();
        prop_assert_eq!(track.len(), 25);
        prop_assert!(track.windows(2).all(|w| w[1].age_gyr > w[0].age_gyr));
        prop_assert!((track.last().unwrap().age_gyr - p.age).abs() < 1e-9);
        // luminosity never decreases along the main sequence in this model
        prop_assert!(track.windows(2).all(|w| w[1].luminosity >= w[0].luminosity - 1e-12));
    }

    #[test]
    fn truth_beats_distant_candidates(seed in 0u64..200) {
        let d = Domain::default();
        // targets kept in the well-modelable interior
        let truth = StellarParams {
            mass: 0.9 + (seed % 7) as f64 * 0.05,
            metallicity: 0.012 + (seed % 5) as f64 * 0.004,
            helium: 0.25 + (seed % 3) as f64 * 0.02,
            alpha: 1.6 + (seed % 4) as f64 * 0.2,
            age: 2.5 + (seed % 6) as f64 * 0.8,
        };
        let obs = synthesize("P", &truth, &d, 0.1, seed).unwrap();
        let f_truth = amp::stellar::fitness(&obs, &truth, &d);
        prop_assert!(f_truth > 0.2, "truth fitness {f_truth}");
        // a far-away candidate is clearly worse
        let far = StellarParams {
            mass: if truth.mass < 1.2 { truth.mass + 0.4 } else { truth.mass - 0.4 },
            age: if truth.age < 6.0 { truth.age + 4.0 } else { truth.age - 2.0 },
            ..truth
        };
        let f_far = amp::stellar::fitness(&obs, &far, &d);
        prop_assert!(f_truth > 5.0 * f_far, "truth {f_truth} vs far {f_far}");
    }
}
