//! Property tests for the parallel-tick merge: `merge_reports` must be
//! commutative and lossless — any permutation of the same per-worker
//! `TickReport` parts merges to the same totals, transitions come out
//! ordered by simulation id, and nothing is dropped. This is what makes
//! the multi-worker tick deterministic regardless of worker scheduling.

use amp::gridamp::{merge_reports, TickReport};
use amp::prelude::*;
use proptest::prelude::*;

fn arb_status() -> impl Strategy<Value = SimStatus> {
    prop_oneof![
        Just(SimStatus::Queued),
        Just(SimStatus::PreJob),
        Just(SimStatus::Running),
        Just(SimStatus::PostJob),
        Just(SimStatus::Cleanup),
        Just(SimStatus::Done),
        Just(SimStatus::Hold),
    ]
}

fn arb_report() -> impl Strategy<Value = TickReport> {
    (
        (0usize..50, 0usize..50, 0usize..50, 0usize..20, 0usize..10),
        proptest::collection::vec((0i64..40, arb_status(), arb_status()), 0..8),
        proptest::collection::vec(0u32..5, 0..4),
    )
        .prop_map(|(counts, transitions, errs)| TickReport {
            jobs_polled: counts.0,
            job_transitions: counts.1,
            sims_stepped: counts.2,
            transitions,
            transient_errors: counts.3,
            new_holds: counts.4,
            daemon_errors: errs
                .into_iter()
                .map(|e| format!("worker error {e}"))
                .collect(),
        })
}

/// Deterministic Fisher–Yates permutation driven by a test-supplied seed
/// (the vendored proptest has no `prop_shuffle`).
fn permute<T>(items: &mut [T], seed: u64) {
    let mut state = seed | 1;
    for i in (1..items.len()).rev() {
        // xorshift64 — quality is irrelevant, determinism is the point
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        items.swap(i, (state as usize) % (i + 1));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_permutation_invariant(
        parts in proptest::collection::vec(arb_report(), 0..7),
        seed in any::<u64>(),
    ) {
        let baseline = merge_reports(parts.clone());
        let mut shuffled = parts.clone();
        permute(&mut shuffled, seed);
        let merged = merge_reports(shuffled);
        prop_assert_eq!(&merged, &baseline, "merge depends on worker order");
    }

    #[test]
    fn merge_is_lossless_and_sorted(
        parts in proptest::collection::vec(arb_report(), 0..7),
        seed in any::<u64>(),
    ) {
        let mut shuffled = parts.clone();
        permute(&mut shuffled, seed);
        let merged = merge_reports(shuffled);

        // counts are exact sums — nothing dropped, nothing double-counted
        prop_assert_eq!(merged.jobs_polled, parts.iter().map(|p| p.jobs_polled).sum::<usize>());
        prop_assert_eq!(
            merged.job_transitions,
            parts.iter().map(|p| p.job_transitions).sum::<usize>()
        );
        prop_assert_eq!(merged.sims_stepped, parts.iter().map(|p| p.sims_stepped).sum::<usize>());
        prop_assert_eq!(
            merged.transient_errors,
            parts.iter().map(|p| p.transient_errors).sum::<usize>()
        );
        prop_assert_eq!(merged.new_holds, parts.iter().map(|p| p.new_holds).sum::<usize>());

        // every transition survives as a multiset...
        let mut expected: Vec<_> = parts.iter().flat_map(|p| p.transitions.clone()).collect();
        expected.sort_by(|a, b| (a.0, a.1.as_str(), a.2.as_str()).cmp(&(b.0, b.1.as_str(), b.2.as_str())));
        prop_assert_eq!(&merged.transitions, &expected);
        // ...and the output is ordered by simulation id
        prop_assert!(merged.transitions.windows(2).all(|w| w[0].0 <= w[1].0));

        // daemon errors survive as a multiset too
        let mut errs: Vec<_> = parts.iter().flat_map(|p| p.daemon_errors.clone()).collect();
        errs.sort();
        prop_assert_eq!(&merged.daemon_errors, &errs);
    }

    #[test]
    fn merge_of_single_part_is_identity_up_to_ordering(report in arb_report()) {
        let merged = merge_reports([report.clone()]);
        prop_assert_eq!(merged.jobs_polled, report.jobs_polled);
        prop_assert_eq!(merged.sims_stepped, report.sims_stepped);
        prop_assert_eq!(merged.transitions.len(), report.transitions.len());
        prop_assert_eq!(merged.daemon_errors.len(), report.daemon_errors.len());
    }
}
