//! F2/S1 integration: Figure 2's isolation — the public portal holds no
//! credentials and cannot touch grid state; all input is marshaled through
//! typed tables; every grid request is attributable to a gateway user.

use amp::portal::{Portal, PortalConfig, Request};
use amp::prelude::*;

fn deployment() -> amp::gridamp::Deployment {
    amp::gridamp::deploy(amp::grid::systems::kraken(), DaemonConfig::default(), None).unwrap()
}

#[test]
fn web_role_cannot_touch_grid_state() {
    let dep = deployment();
    let web = dep.db.connect(amp::core::roles::ROLE_WEB).unwrap();
    // every grid-side table denies writes to the portal role
    assert!(web.insert("grid_job", &[]).is_err());
    assert!(web.update("allocation", 1, &[]).is_err());
    assert!(web.delete("simulation", 1).is_err());
    // unknown tables are denied outright (default-deny)
    assert!(web.select("secrets", &Query::new()).is_err());
}

#[test]
fn public_portal_has_no_admin_connection_and_no_admin_routes() {
    let dep = deployment();
    let portal = Portal::new(&dep.db, PortalConfig::default()).unwrap();
    assert!(portal.admin_conn().is_none());
    assert_eq!(portal.handle(&Request::get("/admin")).status, 404);
    assert_eq!(
        portal
            .handle(&Request::post("/admin/users/1/approve", &[]))
            .status,
        404
    );
}

#[test]
fn compromised_web_tier_cannot_forge_grid_requests() {
    // Even with the web connection fully in hand (a "root compromise of
    // the web server", §3), the attacker has no community credential: any
    // proxy they mint themselves is rejected by every site.
    let dep = deployment();
    let mallory_cred = amp::grid::CommunityCredential::new("/CN=mallory web shell");
    let proxy = mallory_cred.issue_proxy("mallory", dep.grid.now(), SimDuration::from_hours(10.0));
    let err = dep
        .grid
        .gram_submit(
            "kraken",
            &proxy,
            GramJobSpec {
                service: GramService::Batch,
                executable: "/amp/bin/mpikaia".into(),
                args: vec!["evil".into()],
                workdir: "pwned".into(),
                cores: 1,
                walltime: SimDuration::from_minutes(5.0),
                depends_on: vec![],
                name: "evil".into(),
            },
        )
        .unwrap_err();
    assert!(matches!(err, GridError::NotAuthorized { .. }));
    let ftp = dep
        .grid
        .ftp_put("kraken", &proxy, "evil.sh", b"#!/bin/sh".to_vec())
        .unwrap_err();
    assert!(matches!(ftp, GridError::NotAuthorized { .. }));
}

#[test]
fn only_wellformed_input_files_reach_the_grid() {
    // The daemon regenerates input files from typed DB rows; whatever a
    // user typed, the staged file parses under the rigid grammar.
    let mut dep = deployment();
    let truth = StellarParams {
        mass: 1.05,
        metallicity: 0.02,
        helium: 0.27,
        alpha: 2.0,
        age: 4.0,
    };
    let (user, star, alloc, obs_id) =
        amp::gridamp::seed_fixtures(&dep.db, "kraken", &truth, 4).unwrap();

    // poison the observation identifier with shell metacharacters via the
    // typed row (worst case: attacker wrote the text column directly)
    let admin = dep.db.connect(amp::core::roles::ROLE_ADMIN).unwrap();
    let observations = Manager::<Observation>::new(admin.clone());
    let mut obs = observations.get(obs_id).unwrap();
    let mut observed = obs.observed().unwrap();
    observed.identifier = "HD 1; rm -rf / `curl evil`".into();
    obs.data_json = serde_json::to_string(&observed).unwrap();
    observations.save(&obs).unwrap();

    let web = dep.db.connect(amp::core::roles::ROLE_WEB).unwrap();
    let spec = OptimizationSpec {
        ga_runs: 1,
        population: 16,
        generations: 10,
        cores_per_run: 128,
        seed: 1,
    };
    let mut sim = Simulation::new_optimization(star, user, spec, obs_id, "kraken", alloc, 0);
    Manager::<Simulation>::new(web).create(&mut sim).unwrap();

    // run a few ticks so the input file gets staged
    for _ in 0..4 {
        dep.daemon.tick(&dep.grid);
        dep.grid.advance(SimDuration::from_secs(300));
    }
    let fs = &dep.grid.site("kraken").unwrap().fs;
    let staged = fs
        .read(&format!("amp/sim{}/run0/observations.in", sim.id.unwrap()))
        .expect("input staged");
    let text = String::from_utf8_lossy(staged);
    // metacharacters never cross the boundary
    assert!(!text.contains(';'));
    assert!(!text.contains('`'));
    assert!(!text.contains('/'));
    // and the staged file still parses under the rigid grammar
    let parsed = amp::core::parse_observation_file(&text).unwrap();
    assert!(parsed.identifier.starts_with("HD 1_"));
}

#[test]
fn audit_trail_disambiguates_community_users() {
    let mut dep = deployment();
    let truth = StellarParams {
        mass: 1.0,
        metallicity: 0.02,
        helium: 0.27,
        alpha: 2.0,
        age: 4.0,
    };
    let (_user, star, alloc, _obs) =
        amp::gridamp::seed_fixtures(&dep.db, "kraken", &truth, 5).unwrap();

    // add a second astronomer with their own simulation
    let admin = dep.db.connect(amp::core::roles::ROLE_ADMIN).unwrap();
    let users = Manager::<AmpUser>::new(admin.clone());
    let mut u2 = AmpUser::new("astro2", "a2@x.edu", "h", 0);
    u2.approved = true;
    let u2_id = users.create(&mut u2).unwrap();

    let sims = Manager::<Simulation>::new(admin);
    let mut s1 = Simulation::new_direct(star, 1, StellarParams::sun(), "kraken", alloc, 0);
    sims.create(&mut s1).unwrap();
    let mut s2 = Simulation::new_direct(star, u2_id, StellarParams::sun(), "kraken", alloc, 0);
    sims.create(&mut s2).unwrap();

    dep.daemon.run_until_settled(&dep.grid, 48.0);

    let audit = dep.grid.audit();
    assert!(audit.fully_attributed());
    // both users appear, under the same community subject
    assert!(audit.by_user("astro1").count() >= 3);
    assert!(audit.by_user("astro2").count() >= 3);
    let subjects: std::collections::BTreeSet<&str> =
        audit.records().iter().map(|r| r.subject.as_str()).collect();
    assert_eq!(subjects.len(), 1, "one community credential for all users");
}

#[test]
fn portal_pages_never_mention_grid_jargon() {
    let dep = deployment();
    let portal = Portal::new(&dep.db, PortalConfig::default()).unwrap();
    for path in [
        "/",
        "/stars",
        "/simulations",
        "/accounts/login",
        "/accounts/register",
    ] {
        let body = portal.handle(&Request::get(path)).body_str().to_lowercase();
        for word in ["certificate", "globus", "gridftp", "proxy", "gram"] {
            assert!(!body.contains(word), "{path} mentions {word}");
        }
    }
}
