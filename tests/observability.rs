//! Observability integration: the process-wide metrics registry is fed by
//! all three tiers (portal, simdb, gridamp daemon + GA), the portal's
//! `GET /metrics` route exposes them in Prometheus text format, the
//! flight recorder retains the last-N structured events across a daemon
//! failure, and the keep-alive server closes idle connections cleanly
//! (idle timeout is bookkept as `idle_timeout`, never as an I/O error).
//!
//! Metrics are cumulative per process, so every assertion here is a
//! "present / increased by" check, never an exact global count.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use amp::grid::{Service, SimTime};
use amp::obs;
use amp::portal::Request;
use amp::prelude::*;
use amp::simdb::Db;

fn truth() -> StellarParams {
    StellarParams {
        mass: 1.05,
        metallicity: 0.02,
        helium: 0.27,
        alpha: 2.0,
        age: 4.0,
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("amp_obs_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Drive a small end-to-end workload through every tier, then assert the
/// portal's `/metrics` route renders series from each of them.
#[test]
fn metrics_endpoint_covers_all_three_tiers() {
    // --- simdb tier (durable): WAL fsyncs, commit batches, lock holds ---
    let dir = tmpdir("metrics");
    {
        let db = Db::open(dir.join("amp.snap"), dir.join("amp.wal")).unwrap();
        amp::core::setup::initialize(&db).unwrap();
        let admin = db.connect(amp::core::roles::ROLE_ADMIN).unwrap();
        let stars = Manager::<Star>::new(admin);
        for s in amp::stellar::famous_stars().iter().take(3) {
            let mut star = Star::from_catalog(s, "local");
            stars.create(&mut star).unwrap();
        }
    }

    // --- daemon + GA tier: a tiny optimization run on simulated Kraken ---
    let mut dep =
        amp::gridamp::deploy(amp::grid::systems::kraken(), DaemonConfig::default(), None).unwrap();
    let (user, star, alloc, obs_id) =
        amp::gridamp::seed_fixtures(&dep.db, "kraken", &truth(), 1).unwrap();
    let web = dep.db.connect(amp::core::roles::ROLE_WEB).unwrap();
    let spec = OptimizationSpec {
        ga_runs: 1,
        population: 10,
        generations: 5,
        cores_per_run: 128,
        seed: 7,
    };
    let mut sim = Simulation::new_optimization(star, user, spec, obs_id, "kraken", alloc, 0);
    let sim_id = Manager::<Simulation>::new(web).create(&mut sim).unwrap();
    dep.daemon.run_until_settled(&dep.grid, 24.0 * 30.0);
    let admin = dep.db.connect(amp::core::roles::ROLE_ADMIN).unwrap();
    let done = Manager::<Simulation>::new(admin).get(sim_id).unwrap();
    assert_eq!(done.status, SimStatus::Done, "{}", done.status_message);

    // --- portal tier: a few routed requests, then scrape /metrics ---
    let portal = Portal::new(&dep.db, PortalConfig::default()).unwrap();
    assert_eq!(portal.handle(&Request::get("/stars")).status, 200);
    assert_eq!(portal.handle(&Request::get("/stars")).status, 200);
    let scrape = portal.handle(&Request::get("/metrics"));
    assert_eq!(scrape.status, 200);
    let ct = scrape
        .headers
        .iter()
        .find(|(k, _)| k == "Content-Type")
        .map(|(_, v)| v.as_str())
        .unwrap_or_default();
    assert!(ct.starts_with("text/plain"), "Content-Type: {ct}");

    let body = scrape.body_str();
    for family in [
        // portal
        "portal_requests_total",
        "portal_request_seconds",
        "portal_cache_misses_total",
        // simdb
        "simdb_plan_total",
        "simdb_wal_fsync_total",
        "simdb_wal_commit_batch_records",
        // write-path cost metrics: rows materialized per commit and
        // writers covered per group-commit flush
        "simdb_rows_copied_per_write",
        "simdb_group_commit_writers",
        // per-table lock series (replaced the whole-engine hold timer);
        // every migrated table registers its own labelled pair
        "# TYPE simdb_table_lock_hold_seconds histogram",
        "simdb_table_lock_hold_seconds_count{table=\"grid_job\"}",
        "simdb_table_lock_wait_seconds_count{table=\"star\"}",
        // daemon + GA — per-transition and per-eval series carry the
        // science-application label, so mixed-app campaigns can be told
        // apart on one dashboard
        "daemon_transitions_total{app=\"stellar\",from=\"QUEUED\",to=\"PREJOB\"}",
        "daemon_gram_poll_seconds",
        "ga_evals_total{app=\"stellar\"}",
        "ga_cached_skips_total{app=\"stellar\"}",
    ] {
        assert!(body.contains(family), "/metrics missing {family}:\n{body}");
    }
    // Spot-check the exposition shape: TYPE lines and histogram suffixes.
    assert!(body.contains("# TYPE portal_requests_total counter"));
    assert!(body.contains("# TYPE daemon_gram_poll_seconds histogram"));
    assert!(body.contains("daemon_gram_poll_seconds_bucket"));
    assert!(body.contains("site=\"kraken\""));
    // The route label is the pattern, not a raw path (bounded cardinality).
    assert!(body.contains("route=\"/stars\""));
    // The scrape itself must not be cached: two scrapes may differ.
    let again = portal.handle(&Request::get("/metrics"));
    assert_eq!(again.status, 200);
}

/// A transient storm past the retry cap escalates to HOLD; the flight
/// recorder retains the recent transient / hold event sequence and its
/// dump names what went wrong.
#[test]
fn flight_recorder_dumps_recent_events_on_daemon_failure() {
    let mut dep = amp::gridamp::deploy(
        amp::grid::systems::kraken(),
        DaemonConfig {
            max_transient_retries: 3,
            ..DaemonConfig::default()
        },
        None,
    )
    .unwrap();
    // Permanent outage of both GRAM and GridFTP: every poll is transient.
    dep.grid
        .faults
        .add_outage("kraken", Service::Both, SimTime(0), SimTime(u64::MAX / 2));
    let (user, star, alloc, _obs) =
        amp::gridamp::seed_fixtures(&dep.db, "kraken", &truth(), 9).unwrap();
    let web = dep.db.connect(amp::core::roles::ROLE_WEB).unwrap();
    let mut sim = Simulation::new_direct(star, user, truth(), "kraken", alloc, 0);
    let sim_id = Manager::<Simulation>::new(web).create(&mut sim).unwrap();

    dep.daemon.run_until_settled(&dep.grid, 48.0);

    let admin = dep.db.connect(amp::core::roles::ROLE_ADMIN).unwrap();
    let held = Manager::<Simulation>::new(admin).get(sim_id).unwrap();
    assert_eq!(held.status, SimStatus::Hold, "{}", held.status_message);

    // The ring buffer holds the story: transient retries, then the hold.
    let events = obs::flight().events();
    assert!(!events.is_empty());
    assert!(events.len() <= obs::FLIGHT_CAPACITY);
    let sim_tag = format!("sim {sim_id}");
    assert!(
        events
            .iter()
            .any(|e| e.category == "transient" && e.detail.contains(&sim_tag)),
        "no transient events for {sim_tag}"
    );
    assert!(
        events
            .iter()
            .any(|e| e.category == "hold" && e.detail.contains(&sim_tag)),
        "no hold event for {sim_tag}"
    );
    // Sequence numbers are monotone, so the dump reads in order: the
    // hold comes after at least one of its transients.
    let first_transient = events
        .iter()
        .find(|e| e.category == "transient" && e.detail.contains(&sim_tag))
        .unwrap()
        .seq;
    let hold = events
        .iter()
        .find(|e| e.category == "hold" && e.detail.contains(&sim_tag))
        .unwrap()
        .seq;
    assert!(hold > first_transient);

    let dump = obs::flight().render();
    assert!(dump.contains("flight recorder:"), "{dump}");
    assert!(dump.contains("transient storm"), "{dump}");
    // And the metrics side agrees an escalation happened.
    assert!(obs::counter("daemon_holds_total").get() >= 1);
    assert!(obs::counter("daemon_transient_retries_total").get() >= 3);
}

/// Regression for the close-accounting bugfix: a close the *client*
/// negotiated (`Connection: close`) and a close the *server* forced
/// (`keep_alive` disabled in config) are attributed to different
/// counter families — the old worker-pool server lumped both into
/// `client_close`, making "are clients hanging up on us?" unanswerable.
#[test]
fn close_reasons_distinguish_client_from_server_initiated() {
    let client_closes = obs::counter(&obs::labeled(
        "portal_connections_closed_total",
        &[("reason", "client_close")],
    ));
    let server_closes = obs::counter(&obs::labeled(
        "portal_connections_closed_total",
        &[("reason", "server_close")],
    ));
    let await_at_least = |counter: &amp::obs::Counter, target: u64, what: &str| {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while counter.get() < target && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(counter.get() >= target, "{what} not recorded");
    };

    let db = Db::in_memory();
    amp::core::setup::initialize(&db).unwrap();
    let portal = Arc::new(Portal::new(&db, PortalConfig::default()).unwrap());

    // Phase 1: server honours keep-alive; the client asks to close.
    let c0 = client_closes.get();
    let s0 = server_closes.get();
    let server = amp::portal::Server::spawn_with(
        portal.clone(),
        0,
        amp::portal::ServerConfig {
            workers: 1,
            ..amp::portal::ServerConfig::default()
        },
    )
    .unwrap();
    let resp = amp::portal::server::fetch(
        server.addr(),
        "GET /stars HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    )
    .unwrap();
    assert!(resp.starts_with("HTTP/1.1 200"));
    await_at_least(&client_closes, c0 + 1, "client-negotiated close");
    assert_eq!(
        server_closes.get(),
        s0,
        "client-negotiated close miscounted as server_close"
    );
    server.stop();

    // Phase 2: keep-alive disabled server-side; the client wanted to
    // keep the connection.
    let c1 = client_closes.get();
    let s1 = server_closes.get();
    let server = amp::portal::Server::spawn_with(
        portal.clone(),
        0,
        amp::portal::ServerConfig {
            workers: 1,
            keep_alive: false,
            ..amp::portal::ServerConfig::default()
        },
    )
    .unwrap();
    let resp = amp::portal::server::fetch(server.addr(), "GET /stars HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    assert!(resp.starts_with("HTTP/1.1 200"));
    assert!(resp.to_ascii_lowercase().contains("connection: close"));
    await_at_least(&server_closes, s1 + 1, "server-forced close");
    assert_eq!(
        client_closes.get(),
        c1,
        "server-forced close miscounted as client_close"
    );

    // All close-reason families (and the serving gauges) are registered
    // the moment a server runs, so a scrape can always see the full set.
    let scrape = portal.handle(&Request::get("/metrics")).body_str();
    for family in [
        "reason=\"client_close\"",
        "reason=\"server_close\"",
        "reason=\"read_deadline\"",
        "reason=\"idle_timeout\"",
        "reason=\"too_large\"",
        "portal_open_connections",
        "portal_conn_queue_wait_seconds",
    ] {
        assert!(
            scrape.contains(family),
            "/metrics missing {family}:\n{scrape}"
        );
    }
    server.stop();
}

/// Regression for the idle-timeout bugfix: a keep-alive connection that
/// goes quiet is closed *cleanly* — the reader's `WouldBlock`/`TimedOut`
/// is mapped to an `idle_timeout` close, not surfaced as an I/O error.
#[test]
fn idle_keep_alive_connection_closes_cleanly_on_timeout() {
    let idle = obs::counter(&obs::labeled(
        "portal_connections_closed_total",
        &[("reason", "idle_timeout")],
    ));
    let errs = obs::counter(&obs::labeled(
        "portal_connections_closed_total",
        &[("reason", "error")],
    ));
    let idle_before = idle.get();
    let errs_before = errs.get();

    let db = Db::in_memory();
    amp::core::setup::initialize(&db).unwrap();
    let portal = Arc::new(Portal::new(&db, PortalConfig::default()).unwrap());
    let server = amp::portal::Server::spawn_with(
        portal,
        0,
        amp::portal::ServerConfig {
            workers: 1,
            idle_timeout: Duration::from_millis(150),
            ..amp::portal::ServerConfig::default()
        },
    )
    .unwrap();

    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .write_all(b"GET /stars HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    // One framed response arrives, then we go quiet and the server must
    // close the socket (EOF) rather than erroring or hanging.
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break, // clean close
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => panic!("expected clean close, got read error {e}"),
        }
    }
    assert!(buf.starts_with(b"HTTP/1.1 200"));
    server.stop();

    assert!(
        idle.get() > idle_before,
        "idle close was not recorded as idle_timeout"
    );
    assert_eq!(
        errs.get(),
        errs_before,
        "idle close was miscounted as a connection error"
    );
}
