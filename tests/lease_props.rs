//! Property tests for the lease CAS protocol: under arbitrary
//! interleavings of claim attempts by competing daemons — with arbitrary
//! clock advances between them — ownership stays linearizable. At every
//! point at most one daemon's claim is valid, epochs never move
//! backwards, and a fenced-out claim can never pass the fencing check
//! again.

mod common;

use std::collections::{HashMap, HashSet};

use amp::gridamp::lease::{claim, current, ClaimOutcome};
use amp::prelude::*;
use amp_stellar::synthetic_sky;
use proptest::prelude::*;

const TTL: i64 = 1_000;

/// One scheduled claim attempt: `daemon` tries to claim at `dt` seconds
/// after the previous attempt.
#[derive(Debug, Clone)]
struct Attempt {
    daemon: u8,
    dt: i64,
}

fn arb_attempts() -> impl Strategy<Value = Vec<Attempt>> {
    proptest::collection::vec(
        (0u8..4, 0i64..1_500).prop_map(|(daemon, dt)| Attempt { daemon, dt }),
        1..40,
    )
}

/// A database with one simulation to fight over; returns the daemon-role
/// connection and the sim id.
fn db_with_sim() -> (Db, amp::simdb::Connection, i64) {
    let db = Db::in_memory();
    amp::core::setup::initialize(&db).unwrap();
    let admin = db.connect(amp::core::roles::ROLE_ADMIN).unwrap();
    let mut user = AmpUser::new("u", "u@x.edu", "h", 0);
    Manager::<AmpUser>::new(admin.clone())
        .create(&mut user)
        .unwrap();
    let sky = synthetic_sky(1, 1);
    let mut star = Star::from_catalog(&sky[0], "local");
    Manager::<Star>::new(admin.clone())
        .create(&mut star)
        .unwrap();
    let mut alloc = Allocation::new("kraken", "TG-1", 1000.0);
    Manager::<Allocation>::new(admin.clone())
        .create(&mut alloc)
        .unwrap();
    let mut sim = Simulation::new_direct(
        star.id.unwrap(),
        user.id.unwrap(),
        StellarParams::sun(),
        "kraken",
        alloc.id.unwrap(),
        0,
    );
    let sim_id = Manager::<Simulation>::new(admin).create(&mut sim).unwrap();
    let conn = db.connect(amp::core::roles::ROLE_DAEMON).unwrap();
    (db, conn, sim_id)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Linearizability of the claim protocol over arbitrary sequential
    /// interleavings (every concurrent history of the CAS protocol is
    /// equivalent to one of these): no two daemons ever simultaneously
    /// hold passing fencing tokens, and the epoch is monotone.
    #[test]
    fn no_two_daemons_ever_hold_a_valid_epoch(attempts in arb_attempts()) {
        let (_db, conn, sim_id) = db_with_sim();
        let mut now = 0i64;
        let mut last_epoch = 0i64;
        // Each daemon's live belief: the (daemon, epoch) fencing token its
        // last successful claim granted, until an outcome revokes it.
        let mut beliefs: HashMap<String, i64> = HashMap::new();
        // Every fencing token that was ever superseded by a later claim.
        // Fencing safety == none of these ever matches the row again.
        let mut stale: HashSet<(String, i64)> = HashSet::new();

        for attempt in attempts {
            now += attempt.dt;
            let me = format!("d{}", attempt.daemon);
            let outcome = claim(&conn, &me, sim_id, "stellar", now, TTL).unwrap();
            match &outcome {
                ClaimOutcome::Claimed { epoch }
                | ClaimOutcome::Renewed { epoch }
                | ClaimOutcome::TakenOver { epoch, .. } => {
                    beliefs.insert(me.clone(), *epoch);
                }
                ClaimOutcome::Held { .. } | ClaimOutcome::Lost => {
                    // the protocol just told this daemon it owns nothing
                    beliefs.remove(&me);
                }
            }

            let row = current(&conn, sim_id).unwrap().expect("row exists after a claim");
            // epochs never move backwards
            prop_assert!(row.epoch >= last_epoch, "epoch went backwards");
            last_epoch = row.epoch;
            // takeovers always bump the epoch
            if let ClaimOutcome::TakenOver { epoch, .. } = &outcome {
                prop_assert_eq!(*epoch, row.epoch);
            }

            // Any belief that no longer matches the row has been fenced
            // out — remember it forever.
            for (d, e) in &beliefs {
                if !(d == &row.daemon_id && *e == row.epoch) {
                    stale.insert((d.clone(), *e));
                }
            }

            // THE invariant: a superseded fencing token can never pass the
            // fencing check again. Holds because the epoch is bumped on
            // every ownership change and never reused — a GC-paused daemon
            // that wakes with a stale token is permanently locked out.
            prop_assert!(
                !stale.contains(&(row.daemon_id.clone(), row.epoch)),
                "a fenced-out token became valid again at t={now}: ({}, {})",
                row.daemon_id,
                row.epoch
            );
        }
    }

    /// First-claim exclusivity under true concurrency: for any number of
    /// racing daemons (2..=8) exactly one wins epoch 1. The thread
    /// interleaving is OS-chosen; the property must hold for all of them.
    #[test]
    fn concurrent_first_claim_single_winner(racers in 2usize..=8) {
        let (db, conn, sim_id) = db_with_sim();
        let winners: usize = std::thread::scope(|s| {
            (0..racers)
                .map(|i| {
                    let db = db.clone();
                    s.spawn(move || {
                        let c = db.connect(amp::core::roles::ROLE_DAEMON).unwrap();
                        let out = claim(&c, &format!("d{i}"), sim_id, "stellar", 0, TTL).unwrap();
                        matches!(out, ClaimOutcome::Claimed { .. }) as usize
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        prop_assert_eq!(winners, 1);
        let row = current(&conn, sim_id).unwrap().unwrap();
        prop_assert_eq!(row.epoch, 1);
    }
}
