//! Sequential/parallel equivalence: a daemon configured with `workers = 8`
//! must drive the exact same workflow as the legacy `workers = 1` tick —
//! identical final simulation statuses, identical job records (up to row
//! ids and GRAM handles, which depend on harmless submission interleaving),
//! identical notification outbox, and identical per-simulation transition
//! sequences tick by tick.

use amp::prelude::*;
use std::collections::BTreeMap;

fn truth() -> StellarParams {
    StellarParams {
        mass: 1.05,
        metallicity: 0.02,
        helium: 0.27,
        alpha: 2.0,
        age: 4.0,
    }
}

/// A job record minus row id and GRAM handle: simulation_id, ga_run,
/// purpose, continuation, site, status, cores, submitted_at, started_at,
/// ended_at.
type JobKey = (
    i64,
    i64,
    String,
    i64,
    String,
    String,
    i64,
    Option<i64>,
    Option<i64>,
    Option<i64>,
);

/// A notification minus row id: user_id, simulation_id, audience,
/// subject, body, created_at.
type NoteKey = (Option<i64>, Option<i64>, String, String, String, i64);

/// Everything DB-observable about a finished scenario, canonicalized so
/// two equivalent runs compare equal:
/// * job records drop row id and GRAM handle (scheduler handles encode
///   submission interleaving, which differs across worker counts without
///   affecting behavior) and are sorted;
/// * notifications drop row id and are sorted by content;
/// * transitions are the per-simulation sequences accumulated across
///   ticks, in tick order.
#[derive(Debug, PartialEq)]
struct Outcome {
    statuses: BTreeMap<i64, String>,
    jobs: Vec<JobKey>,
    notifications: Vec<NoteKey>,
    transitions: BTreeMap<i64, Vec<(String, String)>>,
    ticks: usize,
}

fn run_scenario(workers: usize) -> Outcome {
    let mut dep = amp::gridamp::deploy(
        amp::grid::systems::kraken(),
        DaemonConfig {
            workers,
            work_walltime_hours: 6.0,
            ..DaemonConfig::default()
        },
        None,
    )
    .unwrap();

    // one 90-minute two-service outage so the transient/retry path is
    // exercised identically by both engines
    dep.grid.faults.add_outage(
        "kraken",
        Service::Both,
        amp_grid::SimTime(1_800),
        amp_grid::SimTime(7_200),
    );

    let (user, star, alloc, obs) =
        amp::gridamp::seed_fixtures(&dep.db, "kraken", &truth(), 7).unwrap();
    let web = dep.db.connect(amp::core::roles::ROLE_WEB).unwrap();
    let sims = Manager::<Simulation>::new(web);

    // four direct simulations with distinct parameters...
    for i in 0..4 {
        let params = StellarParams {
            mass: 0.9 + 0.05 * i as f64,
            ..StellarParams::sun()
        };
        let mut sim = Simulation::new_direct(star, user, params, "kraken", alloc, 0);
        sims.create(&mut sim).unwrap();
    }
    // ...plus two GA ensembles
    for seed in [11, 12] {
        let mut sim = Simulation::new_optimization(
            star,
            user,
            amp::gridamp::small_spec(seed),
            obs,
            "kraken",
            alloc,
            0,
        );
        sims.create(&mut sim).unwrap();
    }

    let admin = dep.db.connect(amp::core::roles::ROLE_ADMIN).unwrap();
    let all_sims = Manager::<Simulation>::new(admin.clone());
    let mut transitions: BTreeMap<i64, Vec<(String, String)>> = BTreeMap::new();
    let mut ticks = 0;
    loop {
        let report = dep.daemon.tick(&dep.grid);
        ticks += 1;
        for (id, from, to) in &report.transitions {
            transitions
                .entry(*id)
                .or_default()
                .push((from.as_str().into(), to.as_str().into()));
        }
        let settled = all_sims
            .all()
            .unwrap()
            .iter()
            .all(|s| matches!(s.status, SimStatus::Done | SimStatus::Hold));
        if settled {
            break;
        }
        assert!(ticks < 5_000, "scenario did not settle (workers={workers})");
        dep.grid.advance(SimDuration::from_secs(300));
    }

    let statuses = all_sims
        .all()
        .unwrap()
        .into_iter()
        .map(|s| (s.id.unwrap(), s.status.as_str().to_string()))
        .collect();

    let mut jobs: Vec<_> = Manager::<GridJobRecord>::new(admin.clone())
        .all()
        .unwrap()
        .into_iter()
        .map(|j| {
            (
                j.simulation_id,
                j.ga_run,
                format!("{:?}", j.purpose),
                j.continuation,
                j.site,
                format!("{:?}", j.status),
                j.cores,
                j.submitted_at,
                j.started_at,
                j.ended_at,
            )
        })
        .collect();
    jobs.sort();

    let mut notifications: Vec<_> = Manager::<Notification>::new(admin)
        .all()
        .unwrap()
        .into_iter()
        .map(|n| {
            (
                n.user_id,
                n.simulation_id,
                n.audience.as_str().to_string(),
                n.subject,
                n.body,
                n.created_at,
            )
        })
        .collect();
    notifications.sort();

    Outcome {
        statuses,
        jobs,
        notifications,
        transitions,
        ticks,
    }
}

#[test]
fn eight_workers_reproduce_the_sequential_run_exactly() {
    let sequential = run_scenario(1);
    let parallel = run_scenario(8);

    // sanity: the scenario exercised real work on both engines
    assert!(sequential.statuses.len() == 6);
    assert!(
        sequential.statuses.values().all(|s| s == "DONE"),
        "{:?}",
        sequential.statuses
    );
    assert!(!sequential.jobs.is_empty());
    assert!(!sequential.notifications.is_empty());

    assert_eq!(parallel.ticks, sequential.ticks, "tick counts diverged");
    assert_eq!(parallel.statuses, sequential.statuses);
    assert_eq!(parallel.transitions, sequential.transitions);
    assert_eq!(parallel.jobs, sequential.jobs);
    assert_eq!(parallel.notifications, sequential.notifications);
}

#[test]
fn every_simulation_walks_the_listing_1_chain_in_order() {
    let parallel = run_scenario(8);
    let happy: Vec<(String, String)> = SimStatus::happy_path()
        .windows(2)
        .map(|w| (w[0].as_str().to_string(), w[1].as_str().to_string()))
        .collect();
    for (sim, seq) in &parallel.transitions {
        assert_eq!(seq, &happy, "sim {sim} transition sequence");
    }
}
