//! Daemon-failure recovery: all workflow state lives in the central
//! database (§5: "we have retained a single application-defined
//! representation of all state"), so a crashed daemon can be replaced and
//! the workflow continues. Also exercises the database's own durability
//! (snapshot + WAL recovery).

use amp::prelude::*;
use amp_gridamp::DaemonMonitor;
use std::path::PathBuf;

fn truth() -> StellarParams {
    StellarParams {
        mass: 1.05,
        metallicity: 0.02,
        helium: 0.27,
        alpha: 2.0,
        age: 4.0,
    }
}

#[test]
fn replacement_daemon_resumes_midflight_simulation() {
    let mut dep = amp::gridamp::deploy(
        amp::grid::systems::kraken(),
        DaemonConfig {
            work_walltime_hours: 6.0,
            ..DaemonConfig::default()
        },
        None,
    )
    .unwrap();
    let (user, star, alloc, obs) =
        amp::gridamp::seed_fixtures(&dep.db, "kraken", &truth(), 1).unwrap();
    let web = dep.db.connect(amp::core::roles::ROLE_WEB).unwrap();
    let spec = OptimizationSpec {
        ga_runs: 2,
        population: 20,
        generations: 30,
        cores_per_run: 128,
        seed: 2,
    };
    let mut sim = Simulation::new_optimization(star, user, spec, obs, "kraken", alloc, 0);
    let sim_id = Manager::<Simulation>::new(web).create(&mut sim).unwrap();

    // run until mid-RUNNING, then "crash" the daemon
    let admin = dep.db.connect(amp::core::roles::ROLE_ADMIN).unwrap();
    let sims = Manager::<Simulation>::new(admin.clone());
    for _ in 0..500 {
        dep.daemon.tick(&dep.grid);
        if sims.get(sim_id).unwrap().status == SimStatus::Running {
            break;
        }
        dep.grid.advance(SimDuration::from_secs(300));
    }
    assert_eq!(sims.get(sim_id).unwrap().status, SimStatus::Running);
    let monitor = DaemonMonitor {
        max_silence_secs: 3600,
    };
    assert!(monitor.healthy(&dep.daemon, dep.grid.now().as_secs() as i64));

    // the crash: drop the daemon entirely; grid time passes unattended
    drop(std::mem::replace(
        &mut dep.daemon,
        amp_gridamp::GridAmp::new(
            &dep.db,
            DaemonConfig {
                work_walltime_hours: 6.0,
                ..DaemonConfig::default()
            },
        )
        .unwrap(),
    ));
    dep.grid.advance(SimDuration::from_hours(6.0));
    // the external monitor notices the silence
    assert!(!monitor.healthy(&dep.daemon, dep.grid.now().as_secs() as i64));

    // the replacement daemon reads everything it needs from the DB and
    // carries the simulation to completion
    dep.daemon.run_until_settled(&dep.grid, 24.0 * 30.0);
    let done = sims.get(sim_id).unwrap();
    assert_eq!(done.status, SimStatus::Done, "{}", done.status_message);
    assert!(done.result_json.is_some());
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("amp_recovery_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn durable_database_survives_process_restart() {
    let dir = tmpdir("durable");
    let snap = dir.join("amp.snap");
    let wal = dir.join("amp.wal");

    let sim_id;
    {
        let db = Db::open(&snap, &wal).unwrap();
        amp::core::setup::initialize(&db).unwrap();
        let admin = db.connect(amp::core::roles::ROLE_ADMIN).unwrap();
        let mut u = AmpUser::new("astro1", "a@x.edu", "h", 0);
        u.approved = true;
        Manager::<AmpUser>::new(admin.clone())
            .create(&mut u)
            .unwrap();
        let mut star = Star::from_catalog(&amp::stellar::famous_stars()[0], "local");
        Manager::<Star>::new(admin.clone())
            .create(&mut star)
            .unwrap();
        let mut alloc = Allocation::new("kraken", "TG-R", 1000.0);
        Manager::<Allocation>::new(admin.clone())
            .create(&mut alloc)
            .unwrap();
        db.snapshot().unwrap(); // snapshot covers the fixtures

        // post-snapshot work lands only in the WAL
        let mut sim = Simulation::new_direct(
            star.id.unwrap(),
            u.id.unwrap(),
            StellarParams::sun(),
            "kraken",
            alloc.id.unwrap(),
            500,
        );
        sim_id = Manager::<Simulation>::new(admin).create(&mut sim).unwrap();
        // process "exits" here (db dropped)
    }

    // restart: snapshot + WAL suffix replay
    let db = Db::open(&snap, &wal).unwrap();
    amp::core::setup::initialize(&db).unwrap(); // idempotent
    let admin = db.connect(amp::core::roles::ROLE_ADMIN).unwrap();
    let sim = Manager::<Simulation>::new(admin.clone())
        .get(sim_id)
        .unwrap();
    assert_eq!(sim.status, SimStatus::Queued);
    assert_eq!(sim.created_at, 500);
    // fresh writes continue cleanly after recovery
    let mut u2 = AmpUser::new("astro2", "b@x.edu", "h", 0);
    Manager::<AmpUser>::new(admin.clone())
        .create(&mut u2)
        .unwrap();
    assert_eq!(Manager::<AmpUser>::new(admin).all().unwrap().len(), 2);
}

#[test]
fn notification_outbox_preserved_across_daemon_restart() {
    let mut dep =
        amp::gridamp::deploy(amp::grid::systems::kraken(), DaemonConfig::default(), None).unwrap();
    let (user, star, alloc, _obs) =
        amp::gridamp::seed_fixtures(&dep.db, "kraken", &truth(), 3).unwrap();
    let web = dep.db.connect(amp::core::roles::ROLE_WEB).unwrap();
    let mut sim = Simulation::new_direct(star, user, StellarParams::sun(), "kraken", alloc, 0);
    let sim_id = Manager::<Simulation>::new(web).create(&mut sim).unwrap();
    dep.daemon.run_until_settled(&dep.grid, 48.0);

    // replace the daemon; the completion notification is still in the DB
    dep.daemon = amp_gridamp::GridAmp::new(&dep.db, DaemonConfig::default()).unwrap();
    let admin = dep.db.connect(amp::core::roles::ROLE_ADMIN).unwrap();
    let notes = Manager::<Notification>::new(admin)
        .filter(&Query::new().eq("simulation_id", sim_id))
        .unwrap();
    assert!(notes.iter().any(|n| n.subject.contains("complete")));
}
