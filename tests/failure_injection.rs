//! §4.4 failure taxonomy, exercised end-to-end with injected faults:
//! anticipated transients retried silently, model failures held and
//! resumed, walltime kills absorbed by restart files, and external
//! services degrading gracefully.

mod common;

use amp::prelude::*;
use amp_simdb::Op;
use common::{deployment, truth};

#[test]
fn random_outage_storm_is_survived_silently() {
    let mut dep = deployment(6.0);
    // ten random 45-minute GRAM/GridFTP outages over the first 3 days
    dep.grid.faults.add_random_outages(
        "kraken",
        Service::Both,
        10,
        SimDuration::from_minutes(45.0),
        amp_grid::SimTime(3 * 86_400),
        42,
    );
    let (user, star, alloc, obs) =
        amp::gridamp::seed_fixtures(&dep.db, "kraken", &truth(), 1).unwrap();
    let web = dep.db.connect(amp::core::roles::ROLE_WEB).unwrap();
    let spec = OptimizationSpec {
        ga_runs: 2,
        population: 20,
        generations: 30,
        cores_per_run: 128,
        seed: 5,
    };
    let mut sim = Simulation::new_optimization(star, user, spec, obs, "kraken", alloc, 0);
    let sim_id = Manager::<Simulation>::new(web).create(&mut sim).unwrap();

    dep.daemon.run_until_settled(&dep.grid, 24.0 * 30.0);

    let admin = dep.db.connect(amp::core::roles::ROLE_ADMIN).unwrap();
    let done = Manager::<Simulation>::new(admin.clone())
        .get(sim_id)
        .unwrap();
    assert_eq!(done.status, SimStatus::Done, "{}", done.status_message);

    // the user never heard about the outages; only completion mail
    let notes = Manager::<Notification>::new(admin).all().unwrap();
    let user_mail: Vec<_> = notes.iter().filter(|n| n.user_id == Some(user)).collect();
    assert_eq!(user_mail.len(), 1);
    assert!(user_mail[0].subject.contains("complete"));
    // admins saw the transients
    assert!(notes.iter().any(|n| n.user_id.is_none()));
}

#[test]
fn corrupt_restart_file_is_a_model_failure_then_recovers() {
    let mut dep = deployment(6.0);
    let (user, star, alloc, obs) =
        amp::gridamp::seed_fixtures(&dep.db, "kraken", &truth(), 2).unwrap();
    let web = dep.db.connect(amp::core::roles::ROLE_WEB).unwrap();
    let spec = OptimizationSpec {
        ga_runs: 1,
        population: 20,
        generations: 40,
        cores_per_run: 128,
        seed: 3,
    };
    let mut sim = Simulation::new_optimization(star, user, spec, obs, "kraken", alloc, 0);
    let sim_id = Manager::<Simulation>::new(web).create(&mut sim).unwrap();

    // run until the first continuation job's restart file exists
    let restart = format!("amp/sim{sim_id}/run0/restart.json");
    for _ in 0..200 {
        dep.daemon.tick(&dep.grid);
        if dep.grid.site("kraken").unwrap().fs.exists(&restart) {
            break;
        }
        dep.grid.advance(SimDuration::from_secs(600));
    }
    assert!(dep.grid.site("kraken").unwrap().fs.exists(&restart));

    // corrupt it: the next continuation fails -> model failure -> HOLD
    dep.grid
        .site_mut("kraken")
        .unwrap()
        .fs
        .write(&restart, b"{corrupted".to_vec())
        .unwrap();
    dep.daemon.run_until_settled(&dep.grid, 24.0 * 30.0);

    let admin = dep.db.connect(amp::core::roles::ROLE_ADMIN).unwrap();
    let held = Manager::<Simulation>::new(admin.clone())
        .get(sim_id)
        .unwrap();
    assert_eq!(held.status, SimStatus::Hold, "{}", held.status_message);

    // administrator repairs: wipe the run directory + failed job records,
    // then resume — the workflow resubmits from scratch
    dep.grid
        .site_mut("kraken")
        .unwrap()
        .fs
        .remove_tree(&format!("amp/sim{sim_id}/run0"));
    // restage observations for the fresh chain
    let jobs = Manager::<GridJobRecord>::new(admin.clone());
    for j in jobs
        .filter(
            &Query::new()
                .eq("simulation_id", sim_id)
                .eq("purpose", "WORK"),
        )
        .unwrap()
    {
        jobs.delete(j.id.unwrap()).unwrap();
    }
    dep.daemon.resume_from_hold(sim_id).unwrap();
    dep.daemon.run_until_settled(&dep.grid, 24.0 * 30.0);
    let done = Manager::<Simulation>::new(admin).get(sim_id).unwrap();
    assert_eq!(done.status, SimStatus::Done, "{}", done.status_message);
}

#[test]
fn walltime_kill_recovers_via_restart_file() {
    // A GA run whose estimate is sabotaged: make the first continuation
    // overrun by giving the scheduler a very short walltime. The job is
    // killed at the limit, the checkpoint survives, the workflow submits a
    // continuation and still converges.
    let mut dep = deployment(1.0); // 1h walltime: ~2 iterations per job
    let (user, star, alloc, obs) =
        amp::gridamp::seed_fixtures(&dep.db, "kraken", &truth(), 3).unwrap();
    let web = dep.db.connect(amp::core::roles::ROLE_WEB).unwrap();
    let spec = OptimizationSpec {
        ga_runs: 1,
        population: 16,
        generations: 12,
        cores_per_run: 128,
        seed: 4,
    };
    let mut sim = Simulation::new_optimization(star, user, spec, obs, "kraken", alloc, 0);
    let sim_id = Manager::<Simulation>::new(web).create(&mut sim).unwrap();

    dep.daemon.run_until_settled(&dep.grid, 24.0 * 30.0);
    let admin = dep.db.connect(amp::core::roles::ROLE_ADMIN).unwrap();
    let done = Manager::<Simulation>::new(admin.clone())
        .get(sim_id)
        .unwrap();
    assert_eq!(done.status, SimStatus::Done, "{}", done.status_message);
    // many short continuations were needed
    let work = Manager::<GridJobRecord>::new(admin)
        .filter(
            &Query::new()
                .eq("simulation_id", sim_id)
                .eq("purpose", "WORK"),
        )
        .unwrap();
    assert!(work.len() >= 4, "{} jobs", work.len());
}

#[test]
fn transient_storm_escalates_to_hold_after_cap() {
    let mut dep = amp::gridamp::deploy(
        amp::grid::systems::kraken(),
        DaemonConfig {
            max_transient_retries: 3,
            ..DaemonConfig::default()
        },
        None,
    )
    .unwrap();
    // GRAM down forever
    dep.grid.faults.add_outage(
        "kraken",
        Service::Both,
        amp_grid::SimTime(0),
        amp_grid::SimTime(u64::MAX / 2),
    );
    let (user, star, alloc, _obs) =
        amp::gridamp::seed_fixtures(&dep.db, "kraken", &truth(), 4).unwrap();
    let web = dep.db.connect(amp::core::roles::ROLE_WEB).unwrap();
    let mut sim = Simulation::new_direct(star, user, StellarParams::sun(), "kraken", alloc, 0);
    let sim_id = Manager::<Simulation>::new(web).create(&mut sim).unwrap();

    dep.daemon.run_until_settled(&dep.grid, 48.0);
    let admin = dep.db.connect(amp::core::roles::ROLE_ADMIN).unwrap();
    let held = Manager::<Simulation>::new(admin).get(sim_id).unwrap();
    assert_eq!(held.status, SimStatus::Hold);
    assert!(held.status_message.contains("transient storm"));
}

#[test]
fn simbad_outage_degrades_search_gracefully() {
    use amp::portal::{Portal, PortalConfig, Request};
    let dep = deployment(6.0);
    let portal = Portal::new(&dep.db, PortalConfig::default()).unwrap();
    portal.simbad.set_available(false);
    let resp = portal.handle(&Request::get("/stars/search?q=HD+10700"));
    assert_eq!(resp.status, 200);
    assert!(resp.body_str().contains("No matching targets"));
    // back up: the import works
    portal.simbad.set_available(true);
    let resp = portal.handle(&Request::get("/stars/search?q=HD+10700"));
    assert!(resp.body_str().contains("added to the AMP catalog"));
}

#[test]
fn queue_contention_with_background_load_still_completes() {
    let mut dep = amp::gridamp::deploy(
        amp::grid::systems::lonestar(),
        DaemonConfig {
            site: "lonestar".into(),
            work_walltime_hours: 6.0,
            ..DaemonConfig::default()
        },
        Some(778),
    )
    .unwrap();
    dep.grid.advance(SimDuration::from_hours(24.0));
    let (user, star, alloc, obs) =
        amp::gridamp::seed_fixtures(&dep.db, "lonestar", &truth(), 5).unwrap();
    let web = dep.db.connect(amp::core::roles::ROLE_WEB).unwrap();
    let spec = OptimizationSpec {
        ga_runs: 2,
        population: 20,
        generations: 20,
        cores_per_run: 128,
        seed: 6,
    };
    let mut sim = Simulation::new_optimization(
        star,
        user,
        spec,
        obs,
        "lonestar",
        alloc,
        dep.grid.now().as_secs() as i64,
    );
    let sim_id = Manager::<Simulation>::new(web).create(&mut sim).unwrap();
    dep.daemon.run_until_settled(&dep.grid, 24.0 * 60.0);

    let admin = dep.db.connect(amp::core::roles::ROLE_ADMIN).unwrap();
    let done = Manager::<Simulation>::new(admin.clone())
        .get(sim_id)
        .unwrap();
    assert_eq!(done.status, SimStatus::Done, "{}", done.status_message);
    // at least one job actually waited in the queue
    let waited = Manager::<GridJobRecord>::new(admin)
        .filter(
            &Query::new()
                .eq("simulation_id", sim_id)
                .filter("purpose", Op::Eq, "WORK"),
        )
        .unwrap()
        .iter()
        .filter_map(|j| j.wait_secs())
        .any(|w| w > 0);
    assert!(waited, "expected queue contention on busy lonestar");
}
