//! A full optimization run (Figure 1): synthesize Kepler-like observations
//! of a hidden truth star, run an ensemble of independent GA runs as
//! chains of walltime-limited supercomputer jobs, evaluate the best
//! solution with a detail run, and compare the recovered parameters to the
//! truth.
//!
//! Run: `cargo run --release --example optimization_run`

use amp::gridamp::OptimizationResult;
use amp::prelude::*;

fn main() {
    let truth = StellarParams {
        mass: 1.08,
        metallicity: 0.021,
        helium: 0.268,
        alpha: 2.05,
        age: 4.4,
    };
    println!("hidden truth star: {truth:#?}\n");

    // 6-hour walltime forces several continuation jobs per GA run.
    let config = DaemonConfig {
        site: "kraken".into(),
        work_walltime_hours: 6.0,
        ..DaemonConfig::default()
    };
    let mut dep = amp::gridamp::deploy(amp::grid::systems::kraken(), config, None).unwrap();
    let (user, star, alloc, obs) =
        amp::gridamp::seed_fixtures(&dep.db, "kraken", &truth, 42).unwrap();

    let spec = OptimizationSpec {
        ga_runs: 4,
        population: 64,
        generations: 80,
        cores_per_run: 128,
        seed: 7,
    };
    println!(
        "submitting optimization: {} GA runs x {} stars x {} iterations on {} cores total",
        spec.ga_runs,
        spec.population,
        spec.generations,
        spec.total_cores()
    );
    let web = dep.db.connect(amp::core::roles::ROLE_WEB).unwrap();
    let mut sim = Simulation::new_optimization(star, user, spec.clone(), obs, "kraken", alloc, 0);
    let sim_id = Manager::<Simulation>::new(web).create(&mut sim).unwrap();

    // Drive to completion, reporting the workflow transitions.
    let admin = dep.db.connect(amp::core::roles::ROLE_ADMIN).unwrap();
    let sims = Manager::<Simulation>::new(admin.clone());
    let mut last_status = String::new();
    loop {
        dep.daemon.tick(&dep.grid);
        let s = sims.get(sim_id).unwrap();
        let line = format!("{} ({:.0}%)", s.status, s.progress * 100.0);
        if line != last_status {
            println!("t={} status {line}", dep.grid.now());
            last_status = line;
        }
        if matches!(s.status, SimStatus::Done | SimStatus::Hold) {
            break;
        }
        dep.grid.advance(SimDuration::from_secs(600));
    }

    let done = sims.get(sim_id).unwrap();
    assert_eq!(done.status, SimStatus::Done, "{}", done.status_message);
    let result: OptimizationResult =
        serde_json::from_str(done.result_json.as_ref().unwrap()).unwrap();

    println!("\nper-run converged results:");
    for (i, r) in result.runs.iter().enumerate() {
        println!(
            "  GA run {}: fitness {:.4}  mass {:.3}  age {:.2}  Z {:.4}",
            i + 1,
            r.best_fitness,
            r.best_params.mass,
            r.best_params.age,
            r.best_params.metallicity
        );
    }
    let b = &result.best.best_params;
    println!("\nbest-of-ensemble vs truth:");
    println!("  mass  {:.3}  (truth {:.3})", b.mass, truth.mass);
    println!(
        "  Z     {:.4} (truth {:.4})",
        b.metallicity, truth.metallicity
    );
    println!("  Y     {:.3}  (truth {:.3})", b.helium, truth.helium);
    println!("  alpha {:.3}  (truth {:.3})", b.alpha, truth.alpha);
    println!("  age   {:.2}   (truth {:.2})", b.age, truth.age);
    println!(
        "\nsolution detail run: Teff {:.0} K, L {:.3} L_sun, delta_nu {:.1} uHz",
        result.detail.teff, result.detail.luminosity, result.detail.delta_nu
    );

    // Show the Figure-1 structure that actually executed.
    let jobs = Manager::<GridJobRecord>::new(admin)
        .filter(&Query::new().eq("simulation_id", sim_id))
        .unwrap();
    println!("\nexecuted job graph:");
    for r in 0..spec.ga_runs as i64 {
        let n = jobs
            .iter()
            .filter(|j| j.purpose == JobPurpose::Work && j.ga_run == r)
            .count();
        println!("  GA run {}: {} chained jobs", r + 1, n);
    }
    println!(
        "  + 1 solution evaluation, {} fork stages",
        jobs.iter().filter(|j| j.cores == 0).count()
    );
}
