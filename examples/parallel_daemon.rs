//! Parallel daemon ticks: a four-site deployment (frost, kraken,
//! lonestar, ranger) with sixteen direct model runs, driven by the
//! GridAMP daemon's worker pool (`DaemonConfig::workers`). The same
//! scenario is run sequentially and with 8 workers; both must settle in
//! the same number of ticks with every simulation DONE.
//!
//! Run: `cargo run --release --example parallel_daemon`

use amp::prelude::*;
use std::collections::BTreeMap;

const SYSTEMS: [&str; 4] = ["frost", "kraken", "lonestar", "ranger"];

fn run(workers: usize) -> (usize, BTreeMap<i64, String>) {
    let mut dep = amp::gridamp::deploy_multi(
        vec![
            amp::grid::systems::frost(),
            amp::grid::systems::kraken(),
            amp::grid::systems::lonestar(),
            amp::grid::systems::ranger(),
        ],
        DaemonConfig {
            workers,
            ..DaemonConfig::default()
        },
        None,
    )
    .expect("deployment");

    let (user, star, frost_alloc, _obs) =
        amp::gridamp::seed_fixtures(&dep.db, "frost", &StellarParams::sun(), 1).expect("fixtures");

    // seed_fixtures grants frost; the other systems get their own award
    let admin = dep.db.connect(amp::core::roles::ROLE_ADMIN).expect("admin");
    let allocs = Manager::<Allocation>::new(admin.clone());
    let mut alloc_by_system: BTreeMap<&str, i64> = BTreeMap::new();
    alloc_by_system.insert("frost", frost_alloc);
    for system in &SYSTEMS[1..] {
        let mut alloc = Allocation::new(system, &format!("TG-DEMO-{system}"), 1_000_000.0);
        allocs.create(&mut alloc).expect("allocation");
        alloc_by_system.insert(system, alloc.id.unwrap());
    }

    let web = dep
        .db
        .connect(amp::core::roles::ROLE_WEB)
        .expect("web role");
    let sims = Manager::<Simulation>::new(web);
    for i in 0..16 {
        let system = SYSTEMS[i % SYSTEMS.len()];
        let params = StellarParams {
            mass: 0.9 + 0.0125 * i as f64,
            ..StellarParams::sun()
        };
        let mut sim =
            Simulation::new_direct(star, user, params, system, alloc_by_system[system], 0);
        sims.create(&mut sim).expect("submit");
    }

    let ticks = dep.daemon.run_until_settled(&dep.grid, 48.0);
    let statuses = Manager::<Simulation>::new(admin)
        .all()
        .expect("sims")
        .into_iter()
        .map(|s| (s.id.unwrap(), s.status.as_str().to_string()))
        .collect();
    (ticks, statuses)
}

fn main() {
    let (seq_ticks, seq) = run(1);
    println!("sequential  (workers=1): settled in {seq_ticks} ticks");
    let (par_ticks, par) = run(8);
    println!("worker pool (workers=8): settled in {par_ticks} ticks");

    assert_eq!(seq, par, "parallel run diverged from sequential");
    assert_eq!(seq_ticks, par_ticks, "tick counts diverged");
    let done = par.values().filter(|s| *s == "DONE").count();
    println!(
        "identical outcomes, {done}/16 simulations DONE on {} sites",
        SYSTEMS.len()
    );
}
