//! The §6 queue-wait analysis tool as a standalone example: run
//! optimization ensembles on a busy (background-loaded) TACC Lonestar,
//! then print per-simulation Gantt charts (`.` = queued, `#` = running)
//! and the aggregate wait/run statistics.
//!
//! Run: `cargo run --release --example gantt_report`

use amp::gridamp::{chart_for, gantt, render_ascii};
use amp::prelude::*;

fn main() {
    let config = DaemonConfig {
        site: "lonestar".into(),
        work_walltime_hours: 6.0,
        ..DaemonConfig::default()
    };
    // background seed drives the synthetic competing load (§2's
    // "allocation oversubscription" on the TACC systems)
    let mut dep =
        amp::gridamp::deploy(amp::grid::systems::lonestar(), config, Some(20091114)).unwrap();
    dep.grid.advance(SimDuration::from_hours(24.0)); // let the queue fill

    let truth = StellarParams {
        mass: 1.02,
        metallicity: 0.019,
        helium: 0.27,
        alpha: 2.0,
        age: 4.8,
    };
    let (user, star, alloc, obs) =
        amp::gridamp::seed_fixtures(&dep.db, "lonestar", &truth, 6).unwrap();

    let web = dep.db.connect(amp::core::roles::ROLE_WEB).unwrap();
    let sims = Manager::<Simulation>::new(web);
    let mut ids = Vec::new();
    for i in 0..3 {
        let spec = OptimizationSpec {
            ga_runs: 2,
            population: 30,
            generations: 40,
            cores_per_run: 128,
            seed: 100 + i,
        };
        let mut sim = Simulation::new_optimization(
            star,
            user,
            spec,
            obs,
            "lonestar",
            alloc,
            dep.grid.now().as_secs() as i64,
        );
        ids.push(sims.create(&mut sim).unwrap());
    }
    println!(
        "submitted {} optimization runs on busy lonestar...",
        ids.len()
    );
    dep.daemon.run_until_settled(&dep.grid, 24.0 * 60.0);

    let admin = dep.db.connect(amp::core::roles::ROLE_ADMIN).unwrap();
    let mut all_rows = Vec::new();
    for id in ids {
        let chart = chart_for(&admin, id).unwrap();
        println!("{}", render_ascii(&chart, 70));
        all_rows.extend(chart.rows);
    }
    let stats = gantt::stats(&all_rows);
    println!("aggregate execution wait and run time statistics:");
    println!("  jobs:        {}", stats.jobs);
    println!("  mean wait:   {:.1} min", stats.mean_wait_secs / 60.0);
    println!("  median wait: {:.1} min", stats.median_wait_secs / 60.0);
    println!(
        "  max wait:    {:.1} min",
        stats.max_wait_secs as f64 / 60.0
    );
    println!("  mean run:    {:.1} min", stats.mean_run_secs / 60.0);
    println!("  wait/run:    {:.2}", stats.wait_to_run_ratio);
    println!(
        "\nfinal machine utilization: {:.0}%",
        dep.grid.site("lonestar").unwrap().scheduler.utilization() * 100.0
    );
}
