//! Quickstart: stand up a complete AMP deployment (central database,
//! simulated NICS Kraken with the AMP software stack, GridAMP daemon),
//! submit a direct model run of the Sun through the web role, and let the
//! daemon drive it across the grid.
//!
//! Run: `cargo run --release --example quickstart`

use amp::prelude::*;

fn main() {
    // 1. Deploy (Figure 2: database + remote system + daemon).
    let mut dep = amp::gridamp::deploy(amp::grid::systems::kraken(), DaemonConfig::default(), None)
        .expect("deployment");
    println!("deployed AMP against simulated kraken");

    // 2. Seed an approved astronomer, a catalog star and an allocation.
    let (user, star, alloc, _obs) =
        amp::gridamp::seed_fixtures(&dep.db, "kraken", &StellarParams::sun(), 1).expect("fixtures");

    // 3. The portal's role submits the simulation request — nothing more.
    let web = dep
        .db
        .connect(amp::core::roles::ROLE_WEB)
        .expect("web role");
    let mut sim = Simulation::new_direct(star, user, StellarParams::sun(), "kraken", alloc, 0);
    let sim_id = Manager::<Simulation>::new(web)
        .create(&mut sim)
        .expect("submit");
    println!("submitted direct model run #{sim_id} (status QUEUED)");

    // 4. The daemon notices it, stages input, runs pre-job -> model ->
    //    post-job -> cleanup on the simulated machine (Listing 1).
    let ticks = dep.daemon.run_until_settled(&dep.grid, 48.0);
    println!(
        "daemon settled after {ticks} polls, {} of simulated time",
        dep.grid.now()
    );

    // 5. Read the results back, exactly as the results page would.
    let admin = dep.db.connect(amp::core::roles::ROLE_ADMIN).expect("admin");
    let done = Manager::<Simulation>::new(admin).get(sim_id).expect("sim");
    assert_eq!(done.status, SimStatus::Done, "{}", done.status_message);
    let out: ModelOutput = serde_json::from_str(done.result_json.as_ref().unwrap()).unwrap();
    println!("\nmodel output for the Sun:");
    println!("  Teff     = {:.0} K", out.teff);
    println!("  L        = {:.3} L_sun", out.luminosity);
    println!("  R        = {:.3} R_sun", out.radius);
    println!("  log g    = {:.3}", out.log_g);
    println!("  delta_nu = {:.1} uHz", out.delta_nu);
    println!("  nu_max   = {:.0} uHz", out.nu_max);
    println!("  {} pulsation frequencies computed", out.frequencies.len());
}
