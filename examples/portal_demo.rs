//! The full three-tier gateway, driven over real HTTP: a TCP portal
//! server in front of the central database, the GridAMP daemon behind it,
//! and a simulated Kraken at the back. An "astronomer" registers (solving
//! the astronomy CAPTCHA), is approved by an administrator, searches for a
//! star (SIMBAD fall-through import), uploads pulsation frequencies,
//! submits an optimization run, and polls the status page until results
//! appear.
//!
//! Run: `cargo run --release --example portal_demo`

use amp::portal::{server::fetch, Portal, PortalConfig, Server};
use amp::prelude::*;
use std::sync::Arc;

fn main() {
    // --- deploy all three tiers ---
    let mut dep = amp::gridamp::deploy(
        amp::grid::systems::kraken(),
        DaemonConfig {
            work_walltime_hours: 6.0,
            ..DaemonConfig::default()
        },
        None,
    )
    .unwrap();
    // admin-enabled portal instance (the internal deploy of §4.1)
    let portal = Arc::new(
        Portal::new(
            &dep.db,
            PortalConfig {
                admin_enabled: true,
                ..PortalConfig::default()
            },
        )
        .unwrap(),
    );
    let server = Server::spawn(portal.clone(), 0).unwrap();
    println!("portal listening on http://{}", server.addr());

    // allocation + admin account via the admin role
    let adminc = dep.db.connect(amp::core::roles::ROLE_ADMIN).unwrap();
    let mut alloc = Allocation::new("kraken", "TG-AST090030", 1_000_000.0);
    Manager::<Allocation>::new(adminc.clone())
        .create(&mut alloc)
        .unwrap();
    let mut boss = AmpUser::new(
        "boss",
        "boss@ucar.edu",
        &amp::portal::hash_password("letmein99", "s"),
        0,
    );
    boss.approved = true;
    boss.is_admin = true;
    Manager::<AmpUser>::new(adminc.clone())
        .create(&mut boss)
        .unwrap();

    // --- the astronomer registers over HTTP ---
    let form = http_get(&server, "/accounts/register", "");
    let cid: usize = form
        .split("name=\"captcha_id\" value=\"")
        .nth(1)
        .unwrap()
        .split('"')
        .next()
        .unwrap()
        .parse()
        .unwrap();
    // answer the CAPTCHA like an astronomer would
    let question_star = amp::stellar::famous_stars()
        .into_iter()
        .find(|s| form.contains(s.name.as_deref().unwrap_or("?")))
        .expect("captcha names a famous star");
    println!(
        "captcha: \"What is the HD number for {}?\" -> {}",
        question_star.name.as_deref().unwrap(),
        question_star.hd_number.unwrap()
    );
    let resp = http_post(
        &server,
        "/accounts/register",
        &format!(
            "username=astro1&email=astro1%40obs.edu&password=pulsations&captcha_id={cid}&captcha_answer={}",
            question_star.hd_number.unwrap()
        ),
        "",
    );
    assert!(resp.starts_with("HTTP/1.1 302"), "{resp}");
    println!("registered astro1 (pending approval)");

    // --- the administrator approves and authorizes over HTTP ---
    let boss_cookie = login(&server, "boss", "letmein99");
    let astro_id = Manager::<AmpUser>::new(adminc.clone())
        .first(&Query::new().eq("username", "astro1"))
        .unwrap()
        .unwrap()
        .id
        .unwrap();
    http_post(
        &server,
        &format!("/admin/users/{astro_id}/approve"),
        "",
        &boss_cookie,
    );
    http_post(
        &server,
        "/admin/authorize",
        &format!("user_id={astro_id}&allocation_id={}", alloc.id.unwrap()),
        &boss_cookie,
    );
    println!("admin approved astro1 and authorized kraken/TG-AST090030");

    // --- search for a target: SIMBAD fall-through import ---
    let cookie = login(&server, "astro1", "pulsations");
    let page = http_get(&server, "/stars/search?q=HD+10700", &cookie);
    assert!(page.contains("added to the AMP catalog"));
    println!("searched HD 10700 (Tau Ceti): imported from SIMBAD");

    // --- upload observations (synthesized from a hidden truth) ---
    let truth = StellarParams {
        mass: 0.92,
        metallicity: 0.014,
        helium: 0.26,
        alpha: 1.8,
        age: 5.8,
    };
    let observed =
        amp::stellar::synthesize("HD 10700", &truth, &Domain::default(), 0.12, 4).unwrap();
    let mut modes_field = String::new();
    for m in &observed.modes {
        modes_field.push_str(&format!(
            "{} {} {:.4} {:.4}\n",
            m.l, m.n, m.frequency, m.sigma
        ));
    }
    let body = format!(
        "modes={}&teff={:.0}&teff_sigma=70&lum=&lum_sigma=",
        urlencode(&modes_field),
        observed.teff.unwrap().value
    );
    let resp = http_post(&server, "/star/HD%2010700/observations", &body, &cookie);
    assert!(resp.starts_with("HTTP/1.1 302"), "{resp}");
    println!("uploaded {} pulsation frequencies", observed.modes.len());

    // --- submit the optimization through the form ---
    let star_id = Manager::<Star>::new(adminc.clone())
        .first(&Query::new().eq("identifier", "HD 10700"))
        .unwrap()
        .unwrap()
        .id
        .unwrap();
    let obs_id = Manager::<Observation>::new(adminc.clone())
        .first(&Query::new().eq("star_id", star_id))
        .unwrap()
        .unwrap()
        .id
        .unwrap();
    let resp = http_post(
        &server,
        &format!("/submit/optimization/{star_id}"),
        &format!(
            "observation={obs_id}&ga_runs=2&generations=40&allocation={}",
            alloc.id.unwrap()
        ),
        &cookie,
    );
    assert!(resp.starts_with("HTTP/1.1 302"), "{resp}");
    let sim_path = resp
        .lines()
        .find(|l| l.starts_with("Location:"))
        .unwrap()
        .split_whitespace()
        .nth(1)
        .unwrap()
        .to_string();
    println!("submitted optimization -> {sim_path}");

    // --- the daemon works while the astronomer polls the status page ---
    let mut polls = 0;
    loop {
        dep.daemon.tick(&dep.grid);
        portal.set_now(dep.grid.now().as_secs() as i64);
        dep.grid.advance(SimDuration::from_secs(900));
        polls += 1;
        let page = http_get(&server, &sim_path, &cookie);
        if page.contains("<b>DONE</b>") {
            println!(
                "simulation DONE after {polls} polls ({} simulated)",
                dep.grid.now()
            );
            break;
        }
        if page.contains("<b>HOLD</b>") {
            panic!("simulation held: {page}");
        }
        assert!(polls < 5000, "no convergence");
    }

    // --- results: status page, plot data, RSS ---
    let page = http_get(&server, &sim_path, &cookie);
    assert!(page.contains("Optimal model"));
    println!("\nstatus page shows the optimal model (mass/age table rendered)");
    let plots = http_get(&server, &format!("{sim_path}/plots.json"), &cookie);
    let plots_json: serde_json::Value =
        serde_json::from_str(plots.split("\r\n\r\n").nth(1).unwrap()).unwrap();
    println!(
        "plots.json: {} HR-track points, {} echelle points, delta_nu {:.1} uHz",
        plots_json["hr_track"].as_array().unwrap().len(),
        plots_json["echelle"].as_array().unwrap().len(),
        plots_json["delta_nu"].as_f64().unwrap()
    );
    let rss = http_get(&server, &format!("/feeds/star/{star_id}.rss"), "");
    assert!(rss.contains("<rss version=\"2.0\">"));
    println!("RSS feed for HD 10700 live ({} bytes)", rss.len());

    server.stop();
    println!("\ndemo complete.");
}

// -- tiny HTTP helpers over the blocking client --

fn http_get(server: &Server, path: &str, cookie: &str) -> String {
    let cookie_line = if cookie.is_empty() {
        String::new()
    } else {
        format!("Cookie: amp_session={cookie}\r\n")
    };
    fetch(
        server.addr(),
        &format!("GET {path} HTTP/1.1\r\nHost: amp\r\n{cookie_line}Connection: close\r\n\r\n"),
    )
    .unwrap()
}

fn http_post(server: &Server, path: &str, body: &str, cookie: &str) -> String {
    let cookie_line = if cookie.is_empty() {
        String::new()
    } else {
        format!("Cookie: amp_session={cookie}\r\n")
    };
    fetch(
        server.addr(),
        &format!(
            "POST {path} HTTP/1.1\r\nHost: amp\r\nContent-Type: application/x-www-form-urlencoded\r\n{cookie_line}Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
    .unwrap()
}

fn login(server: &Server, user: &str, password: &str) -> String {
    let resp = http_post(
        server,
        "/accounts/login",
        &format!("username={user}&password={password}"),
        "",
    );
    resp.lines()
        .find(|l| l.starts_with("Set-Cookie: amp_session="))
        .unwrap_or_else(|| panic!("login failed: {resp}"))
        .trim_start_matches("Set-Cookie: amp_session=")
        .split(';')
        .next()
        .unwrap()
        .to_string()
}

fn urlencode(s: &str) -> String {
    amp::portal::http::urlencode(s)
}
